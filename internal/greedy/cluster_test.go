package greedy

import (
	"math/rand"
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// mergeFriendlyChain mirrors the FFT-Hist structure: the second edge is
// free internally (shared distribution) but expensive externally.
func mergeFriendlyChain() *model.Chain {
	return &model.Chain{
		Tasks: []model.Task{
			{Name: "col", Exec: model.PolyExec{C2: 10}, Replicable: true},
			{Name: "row", Exec: model.PolyExec{C2: 10}, Replicable: true},
			{Name: "hist", Exec: model.PolyExec{C2: 5, C3: 0.1}, Replicable: true},
		},
		ICom: []model.CostFunc{
			model.PolyExec{C1: 0.3, C2: 1},
			model.ZeroExec(),
		},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.3, C2: 0.5, C3: 0.5},
			model.PolyComm{C1: 0.5, C2: 2, C3: 2},
		},
	}
}

func TestClusterMergesSharedDistribution(t *testing.T) {
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 12}
	spans, err := Cluster(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range spans {
		if s.Lo <= 1 && s.Hi >= 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("row+hist not clustered: %v", spans)
	}
}

func TestMapProducesValidMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 40; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 5+rng.Intn(10))
		m, err := Map(c, pl, Options{})
		if err != nil {
			continue
		}
		if err := m.Validate(pl); err != nil {
			t.Errorf("trial %d: invalid mapping %v: %v", trial, &m, err)
		}
	}
}

func TestMapNeverBeatsMapChain(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cfg := testutil.DefaultRandChainConfig()
	matches, trials := 0, 0
	for trial := 0; trial < 25; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 5+rng.Intn(5))
		g, err := Map(c, pl, Options{})
		if err != nil {
			continue
		}
		d, err := dp.MapChain(c, pl, dp.Options{})
		if err != nil {
			continue
		}
		trials++
		if g.Throughput() > d.Throughput()+1e-9 {
			t.Errorf("trial %d: greedy Map %g beats optimal DP %g\n g: %v\n d: %v",
				trial, g.Throughput(), d.Throughput(), &g, &d)
		}
		if testutil.AlmostEqual(g.Throughput(), d.Throughput(), 1e-9) {
			matches++
		}
	}
	if trials == 0 {
		t.Fatal("no feasible trials")
	}
	t.Logf("greedy Map matched DP optimum on %d/%d feasible trials", matches, trials)
}

func TestMapDisableClustering(t *testing.T) {
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 12}
	m, err := Map(c, pl, Options{DisableClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 3 {
		t.Errorf("clustering disabled but got %d modules", len(m.Modules))
	}
}

func TestClusterFallbackWhenSingletonsInfeasible(t *testing.T) {
	// Two tasks, each needing 3 processors alone, on a 5-processor
	// platform: singletons need 6, but one merged module of 5 fits
	// (memory 1500+1500=3000 <= 5*1000 means min procs 3).
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4}, Mem: model.Memory{Data: 2500}, Replicable: true},
			{Name: "b", Exec: model.PolyExec{C2: 4}, Mem: model.Memory{Data: 2500}, Replicable: true},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 5, MemPerProc: 1000}
	m, err := Map(c, pl, Options{})
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if len(m.Modules) != 1 {
		t.Errorf("expected one merged module, got %v", &m)
	}
	if err := m.Validate(pl); err != nil {
		t.Errorf("fallback mapping invalid: %v", err)
	}
}

func TestClusterFallbackNoFit(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4}, Mem: model.Memory{Data: 9500}},
			{Name: "b", Exec: model.PolyExec{C2: 4}, Mem: model.Memory{Data: 9500}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 5, MemPerProc: 1000}
	if _, err := Map(c, pl, Options{}); err == nil {
		t.Error("unfittable chain accepted")
	}
}
