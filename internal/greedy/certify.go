package greedy

import (
	"fmt"

	"pipemap/internal/model"
)

// Certificate explains how much trust the greedy result deserves on a
// given chain, based on the paper's Theorems 1 and 2.
type Certificate struct {
	// Analysis holds the raw condition checks.
	Analysis model.Analysis
	// Optimal is true when at least one theorem's hypotheses hold, so a
	// suitable greedy configuration is provably optimal.
	Optimal bool
	// Recommended is the options configuration the certificate vouches
	// for (slowest-only under Theorem 1; neighbour greedy with
	// backtracking under Theorem 2; the default otherwise).
	Recommended Options
	// Reason is a human-readable justification.
	Reason string
}

// Certify analyzes the chain's cost functions over 1..P and reports which
// greedy configuration, if any, is provably optimal for it.
func Certify(c *model.Chain, pl model.Platform) Certificate {
	a := model.Analyze(c, pl.Procs)
	switch {
	case a.Theorem1Applies():
		return Certificate{
			Analysis:    a,
			Optimal:     true,
			Recommended: Options{Variant: SlowestOnly},
			Reason: "communication time increases monotonically with processor counts; " +
				"by Theorem 1 the slowest-only greedy is optimal",
		}
	case a.Theorem2Applies():
		return Certificate{
			Analysis:    a,
			Optimal:     true,
			Recommended: Options{Backtrack: 2},
			Reason: "cost functions are convex and computation dominates communication; " +
				"by Theorem 2 greedy over-allocates at most 2 processors and bounded " +
				"backtracking recovers the optimum",
		}
	default:
		return Certificate{
			Analysis:    a,
			Optimal:     false,
			Recommended: Options{Backtrack: 2},
			Reason: fmt.Sprintf("no optimality theorem applies (monotoneComm=%v, convex=%v/%v, "+
				"dominance=%v); greedy is heuristic — cross-check with the DP when affordable",
				a.MonotoneComm, a.ExecConvex, a.CommConvex, a.CompDominatesComm),
		}
	}
}
