package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	// FFT of a constant is an impulse of size n at bin 0.
	y := make([]complex128, 8)
	for i := range y {
		y[i] = 1
	}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Errorf("constant FFT[0] = %v, want 8", y[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("constant FFT[%d] = %v, want 0", i, y[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 3 concentrates all energy there.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("tone FFT[%d] magnitude %g, want %g", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64, szExp uint8) bool {
		n := 1 << (szExp%9 + 1) // 2..512
		r := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	n := 128
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Errorf("Parseval violated: time %g, freq %g", timeEnergy, freqEnergy)
	}
}

func TestFFTErrors(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if err := FFT(nil); err != nil {
		t.Errorf("empty FFT failed: %v", err)
	}
}

func TestFFTRowsColsMatchFullTransform(t *testing.T) {
	// colffts then rowffts equals a full 2D FFT; verify a DC input.
	n := 16
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = 1
	}
	if err := FFTCols(m, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := FFTRows(m, 0, n); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(m.At(0, 0)-complex(float64(n*n), 0)) > 1e-9 {
		t.Errorf("2D DC bin = %v, want %d", m.At(0, 0), n*n)
	}
	for i := 1; i < n*n; i++ {
		if cmplx.Abs(m.Data[i]) > 1e-9 {
			t.Errorf("2D FFT leak at %d: %v", i, m.Data[i])
			break
		}
	}
}

func TestTranspose(t *testing.T) {
	src := NewMatrix(4, 8)
	for r := 0; r < 4; r++ {
		for c := 0; c < 8; c++ {
			src.Set(r, c, complex(float64(r), float64(c)))
		}
	}
	dst := NewMatrix(8, 4)
	if err := Transpose(src, dst, 0, 8); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 4; c++ {
			if dst.At(r, c) != src.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
	if err := Transpose(src, NewMatrix(3, 3), 0, 3); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewMatrix(8, 16)
	for i := range src.Data {
		src.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	mid := NewMatrix(16, 8)
	back := NewMatrix(8, 16)
	if err := Transpose(src, mid, 0, 16); err != nil {
		t.Fatal(err)
	}
	if err := Transpose(mid, back, 0, 8); err != nil {
		t.Fatal(err)
	}
	for i := range src.Data {
		if src.Data[i] != back.Data[i] {
			t.Fatal("double transpose is not identity")
		}
	}
}
