package kernels

import (
	"math"
	"math/cmplx"
)

// Histogram accumulates magnitude statistics of a spectrum, the hist task
// of FFT-Hist: a fixed-bin histogram of log magnitudes plus running
// moments. Partial histograms from different workers are merged with
// Merge, which is the task's internal communication.
type Histogram struct {
	Bins     []int64
	Lo, Hi   float64 // bin range in log10 magnitude
	Count    int64
	Sum      float64
	SumSq    float64
	Min, Max float64
}

// NewHistogram returns an empty histogram with n bins over [lo, hi].
func NewHistogram(n int, lo, hi float64) *Histogram {
	return &Histogram{
		Bins: make([]int64, n),
		Lo:   lo, Hi: hi,
		Min: math.Inf(1), Max: math.Inf(-1),
	}
}

// AccumulateMatrix adds the elements of rows [r0, r1) of m.
func (h *Histogram) AccumulateMatrix(m Matrix, r0, r1 int) {
	h.Accumulate(m.Data[r0*m.Cols : r1*m.Cols])
}

// Accumulate adds values to the histogram.
func (h *Histogram) Accumulate(vals []complex128) {
	n := len(h.Bins)
	span := h.Hi - h.Lo
	for _, v := range vals {
		mag := cmplx.Abs(v)
		lm := math.Log10(mag + 1e-300)
		idx := int(float64(n) * (lm - h.Lo) / span)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		h.Bins[idx]++
		h.Count++
		h.Sum += mag
		h.SumSq += mag * mag
		if mag < h.Min {
			h.Min = mag
		}
		if mag > h.Max {
			h.Max = mag
		}
	}
}

// Merge folds another histogram into h; the other histogram must have the
// same shape.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	h.SumSq += o.SumSq
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the mean magnitude.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Variance returns the magnitude variance.
func (h *Histogram) Variance() float64 {
	if h.Count == 0 {
		return 0
	}
	m := h.Mean()
	return h.SumSq/float64(h.Count) - m*m
}
