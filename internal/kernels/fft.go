// Package kernels provides the data parallel computational kernels of the
// paper's evaluation applications: 2D FFT and statistical analysis
// (FFT-Hist), matched filtering, Doppler processing and CFAR detection
// (narrowband tracking radar), and disparity search (multibaseline
// stereo). All kernels take explicit index ranges so a runtime can
// partition them across workers.
package kernels

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the in-place inverse FFT of x (normalized by 1/n).
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] *= complex(inv, 0)
	}
	return nil
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("kernels: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for off := 0; off < half; off++ {
				a := x[start+off]
				b := x[start+off+half] * w
				x[start+off] = a + b
				x[start+off+half] = a - b
				w *= wstep
			}
		}
	}
	return nil
}

// Matrix is a dense row-major complex matrix, the data set flowing through
// the FFT-Hist and radar pipelines.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewMatrix allocates a Rows x Cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at (r, c).
func (m Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix.
func (m Matrix) Row(r int) []complex128 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// FFTRows transforms rows [r0, r1) of the matrix in place. It is the
// row-parallel unit of work of the paper's rowffts task.
func FFTRows(m Matrix, r0, r1 int) error {
	for r := r0; r < r1; r++ {
		if err := FFT(m.Row(r)); err != nil {
			return err
		}
	}
	return nil
}

// FFTCols transforms columns [c0, c1) of the matrix in place (the colffts
// task). Columns are gathered into a scratch buffer, transformed, and
// scattered back.
func FFTCols(m Matrix, c0, c1 int) error {
	buf := make([]complex128, m.Rows)
	for c := c0; c < c1; c++ {
		for r := 0; r < m.Rows; r++ {
			buf[r] = m.Data[r*m.Cols+c]
		}
		if err := FFT(buf); err != nil {
			return err
		}
		for r := 0; r < m.Rows; r++ {
			m.Data[r*m.Cols+c] = buf[r]
		}
	}
	return nil
}

// Transpose writes the transpose of src into dst for the row band
// [r0, r1) of dst. dst must be Cols x Rows when src is Rows x Cols. It is
// the redistribution step between colffts and rowffts.
func Transpose(src, dst Matrix, r0, r1 int) error {
	if src.Rows != dst.Cols || src.Cols != dst.Rows {
		return fmt.Errorf("kernels: transpose shape mismatch %dx%d -> %dx%d",
			src.Rows, src.Cols, dst.Rows, dst.Cols)
	}
	for r := r0; r < r1; r++ {
		for c := 0; c < dst.Cols; c++ {
			dst.Data[r*dst.Cols+c] = src.Data[c*src.Cols+r]
		}
	}
	return nil
}
