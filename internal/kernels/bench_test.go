package kernels

import (
	"fmt"
	"math/rand"
	"testing"
)

func randMatrix(n int, seed int64) Matrix {
	return randCube(n, n, seed)
}

func randCube(rows, cols int, seed int64) Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func BenchmarkFFTRows(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := randMatrix(n, 1)
			b.SetBytes(int64(16 * n * n))
			for i := 0; i < b.N; i++ {
				if err := FFTRows(m, 0, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFFTCols(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := randMatrix(n, 2)
			b.SetBytes(int64(16 * n * n))
			for i := 0; i < b.N; i++ {
				if err := FFTCols(m, 0, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := randMatrix(n, 3)
			dst := NewMatrix(n, n)
			b.SetBytes(int64(16 * n * n))
			for i := 0; i < b.N; i++ {
				if err := Transpose(src, dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHistogramAccumulate(b *testing.B) {
	m := randMatrix(256, 4)
	b.SetBytes(int64(16 * 256 * 256))
	for i := 0; i < b.N; i++ {
		h := NewHistogram(64, -6, 6)
		h.AccumulateMatrix(m, 0, 256)
	}
}

func BenchmarkMatchedFilter(b *testing.B) {
	cube := randCube(16, 512, 7)
	chirp := make([]complex128, 512)
	for i := 0; i < 32; i++ {
		chirp[i] = complex(1, 0)
	}
	if err := FFT(chirp); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(16 * 16 * 512))
	for i := 0; i < b.N; i++ {
		if err := MatchedFilter(cube, chirp, 0, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCFAR(b *testing.B) {
	cube := randCube(16, 512, 8)
	PowerRows(cube, 0, 16)
	for i := 0; i < b.N; i++ {
		CFAR(cube, 2, 8, 12, 0, 16)
	}
}

func BenchmarkStereoDiffErr(b *testing.B) {
	const w, h = 256, 100
	rng := rand.New(rand.NewSource(5))
	ref, target := NewImage(w, h), NewImage(w, h)
	for i := range ref.Pix {
		ref.Pix[i] = rng.Float64()
		target.Pix[i] = rng.Float64()
	}
	diff, out := NewImage(w, h), NewImage(w, h)
	b.SetBytes(int64(8 * w * h))
	for i := 0; i < b.N; i++ {
		if err := DiffImage(ref, target, diff, 3, 0, h); err != nil {
			b.Fatal(err)
		}
		if err := ErrorImage(diff, out, 2, 0, h); err != nil {
			b.Fatal(err)
		}
	}
}
