package kernels

import "fmt"

// The multibaseline stereo pipeline (Webb '93, used in the paper's
// evaluation) computes depth from a reference image and a shifted image:
//
//	difference images for each of nDisp disparity levels ->
//	error images (windowed sums of squared differences) ->
//	minimum reduction across disparities -> depth image
//
// Images are float64 grayscale in row-major layout.

// Image is a dense row-major grayscale image.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a WxH image.
func NewImage(w, h int) Image {
	return Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y).
func (im Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set stores v at (x, y).
func (im Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// DiffImage writes squared differences between ref and target shifted
// left by disparity d into out, for rows [y0, y1). Pixels whose
// correspondence falls outside the target are charged the squared
// reference value (maximally mismatched).
func DiffImage(ref, target, out Image, d, y0, y1 int) error {
	if ref.W != target.W || ref.H != target.H || ref.W != out.W || ref.H != out.H {
		return fmt.Errorf("kernels: diff image shape mismatch")
	}
	for y := y0; y < y1; y++ {
		for x := 0; x < ref.W; x++ {
			rv := ref.At(x, y)
			var diff float64
			if x+d < ref.W {
				diff = rv - target.At(x+d, y)
			} else {
				diff = rv
			}
			out.Set(x, y, diff*diff)
		}
	}
	return nil
}

// ErrorImage box-filters the squared differences with a (2*win+1)^2
// window, writing rows [y0, y1) of out; it is the error image task.
func ErrorImage(diff, out Image, win, y0, y1 int) error {
	if diff.W != out.W || diff.H != out.H {
		return fmt.Errorf("kernels: error image shape mismatch")
	}
	for y := y0; y < y1; y++ {
		for x := 0; x < diff.W; x++ {
			sum, n := 0.0, 0
			for dy := -win; dy <= win; dy++ {
				yy := y + dy
				if yy < 0 || yy >= diff.H {
					continue
				}
				for dx := -win; dx <= win; dx++ {
					xx := x + dx
					if xx < 0 || xx >= diff.W {
						continue
					}
					sum += diff.At(xx, yy)
					n++
				}
			}
			out.Set(x, y, sum/float64(n))
		}
	}
	return nil
}

// DepthMin reduces error images across disparities: depth(x,y) is the
// disparity index with the smallest error, computed for rows [y0, y1).
// The depth image stores disparity indices as float64.
func DepthMin(errs []Image, depth Image, y0, y1 int) error {
	if len(errs) == 0 {
		return fmt.Errorf("kernels: no error images")
	}
	for _, e := range errs {
		if e.W != depth.W || e.H != depth.H {
			return fmt.Errorf("kernels: depth shape mismatch")
		}
	}
	for y := y0; y < y1; y++ {
		for x := 0; x < depth.W; x++ {
			best, bestD := errs[0].At(x, y), 0
			for d := 1; d < len(errs); d++ {
				if v := errs[d].At(x, y); v < best {
					best, bestD = v, d
				}
			}
			depth.Set(x, y, float64(bestD))
		}
	}
	return nil
}
