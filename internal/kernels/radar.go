package kernels

import (
	"fmt"
	"math/cmplx"
)

// The narrowband tracking radar pipeline (one of the paper's evaluation
// programs from the CMU task parallel suite) processes a data cube of
// pulses x range gates per coherent processing interval:
//
//	matched filter (pulse compression) -> Doppler FFT -> CFAR detection
//
// Each stage is data parallel over range gates or pulses.

// MatchedFilter convolves rows (pulses) [r0, r1) of the cube with the
// reference chirp in the frequency domain: X <- IFFT(FFT(X) .* conj(FFT(chirp))).
// chirpFreq must already be the FFT of the chirp, length cube.Cols.
func MatchedFilter(cube Matrix, chirpFreq []complex128, r0, r1 int) error {
	if len(chirpFreq) != cube.Cols {
		return fmt.Errorf("kernels: chirp length %d != %d range gates", len(chirpFreq), cube.Cols)
	}
	for r := r0; r < r1; r++ {
		row := cube.Row(r)
		if err := FFT(row); err != nil {
			return err
		}
		for i := range row {
			row[i] *= cmplx.Conj(chirpFreq[i])
		}
		if err := IFFT(row); err != nil {
			return err
		}
	}
	return nil
}

// DopplerFFT transforms columns (range gates) [c0, c1) of the cube across
// pulses, turning pulse index into Doppler frequency.
func DopplerFFT(cube Matrix, c0, c1 int) error {
	return FFTCols(Matrix{Rows: cube.Rows, Cols: cube.Cols, Data: cube.Data}, c0, c1)
}

// Detection is a CFAR hit: a Doppler bin and range gate whose magnitude
// exceeds the scaled local noise estimate.
type Detection struct {
	Doppler, Range int
	Power          float64
	Threshold      float64
}

// CFAR performs cell-averaging constant-false-alarm-rate detection on
// rows (Doppler bins) [r0, r1) of the magnitude-squared cube: a cell is a
// detection when its power exceeds factor times the mean of the reference
// window (ref cells on each side, excluding guard cells).
func CFAR(power Matrix, guard, ref int, factor float64, r0, r1 int) []Detection {
	var dets []Detection
	for r := r0; r < r1; r++ {
		row := power.Row(r)
		for c := 0; c < power.Cols; c++ {
			sum, n := 0.0, 0
			for d := guard + 1; d <= guard+ref; d++ {
				if c-d >= 0 {
					sum += real(row[c-d])
					n++
				}
				if c+d < power.Cols {
					sum += real(row[c+d])
					n++
				}
			}
			if n == 0 {
				continue
			}
			thr := factor * sum / float64(n)
			if p := real(row[c]); p > thr {
				dets = append(dets, Detection{Doppler: r, Range: c, Power: p, Threshold: thr})
			}
		}
	}
	return dets
}

// PowerRows replaces rows [r0, r1) with per-cell magnitude squared stored
// in the real part (imaginary zeroed), preparing for CFAR.
func PowerRows(cube Matrix, r0, r1 int) {
	for r := r0; r < r1; r++ {
		row := cube.Row(r)
		for i, v := range row {
			p := real(v)*real(v) + imag(v)*imag(v)
			row[i] = complex(p, 0)
		}
	}
}
