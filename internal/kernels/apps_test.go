package kernels

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram(16, -6, 6)
	h.Accumulate([]complex128{1, 2, 3, 4}) // magnitudes 1..4
	if h.Count != 4 {
		t.Fatalf("Count = %d", h.Count)
	}
	if math.Abs(h.Mean()-2.5) > 1e-12 {
		t.Errorf("Mean = %g, want 2.5", h.Mean())
	}
	if math.Abs(h.Variance()-1.25) > 1e-12 {
		t.Errorf("Variance = %g, want 1.25", h.Variance())
	}
	if h.Min != 1 || h.Max != 4 {
		t.Errorf("Min/Max = %g/%g", h.Min, h.Max)
	}
	var total int64
	for _, b := range h.Bins {
		total += b
	}
	if total != 4 {
		t.Errorf("bin total = %d, want 4", total)
	}
}

func TestHistogramMergeEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]complex128, 1000)
	for i := range vals {
		vals[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	whole := NewHistogram(32, -6, 6)
	whole.Accumulate(vals)
	a := NewHistogram(32, -6, 6)
	b := NewHistogram(32, -6, 6)
	a.Accumulate(vals[:400])
	b.Accumulate(vals[400:])
	a.Merge(b)
	if a.Count != whole.Count || a.Min != whole.Min || a.Max != whole.Max {
		t.Error("merged counts or extrema differ from sequential")
	}
	if math.Abs(a.Sum-whole.Sum) > 1e-9*whole.Sum {
		t.Errorf("merged Sum %g differs from sequential %g beyond rounding", a.Sum, whole.Sum)
	}
	for i := range a.Bins {
		if a.Bins[i] != whole.Bins[i] {
			t.Fatalf("bin %d differs: %d vs %d", i, a.Bins[i], whole.Bins[i])
		}
	}
}

func TestHistogramMatrixAccumulate(t *testing.T) {
	m := NewMatrix(4, 4)
	for i := range m.Data {
		m.Data[i] = 2
	}
	h := NewHistogram(8, -6, 6)
	h.AccumulateMatrix(m, 1, 3)
	if h.Count != 8 {
		t.Errorf("Count = %d, want 8 (two rows)", h.Count)
	}
}

func TestRadarDetectsInjectedTarget(t *testing.T) {
	const pulses, gates = 16, 64
	rng := rand.New(rand.NewSource(5))
	// Reference chirp.
	chirp := make([]complex128, gates)
	for i := 0; i < 8; i++ {
		phase := 0.1 * float64(i*i)
		chirp[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	chirpFreq := append([]complex128(nil), chirp...)
	if err := FFT(chirpFreq); err != nil {
		t.Fatal(err)
	}
	// Data cube: noise plus a target echo at gate 20 moving with a phase
	// ramp across pulses (Doppler bin 4).
	cube := NewMatrix(pulses, gates)
	for p := 0; p < pulses; p++ {
		for g := 0; g < gates; g++ {
			cube.Set(p, g, complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05))
		}
		dopplerPhase := 2 * math.Pi * 4 * float64(p) / float64(pulses)
		for i := 0; i < 8; i++ {
			g := 20 + i
			echo := chirp[i] * complex(math.Cos(dopplerPhase), math.Sin(dopplerPhase))
			cube.Set(p, g, cube.At(p, g)+echo*3)
		}
	}
	if err := MatchedFilter(cube, chirpFreq, 0, pulses); err != nil {
		t.Fatal(err)
	}
	if err := DopplerFFT(cube, 0, gates); err != nil {
		t.Fatal(err)
	}
	PowerRows(cube, 0, pulses)
	dets := CFAR(cube, 2, 8, 10, 0, pulses)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	// The strongest detection must sit at Doppler 4, range 20.
	best := dets[0]
	for _, d := range dets {
		if d.Power > best.Power {
			best = d
		}
	}
	if best.Doppler != 4 || best.Range != 20 {
		t.Errorf("strongest detection at doppler=%d range=%d, want 4/20", best.Doppler, best.Range)
	}
}

func TestMatchedFilterChirpLengthError(t *testing.T) {
	cube := NewMatrix(2, 8)
	if err := MatchedFilter(cube, make([]complex128, 4), 0, 2); err == nil {
		t.Error("chirp length mismatch accepted")
	}
}

func TestCFARNoFalseAlarmOnFlatField(t *testing.T) {
	cube := NewMatrix(4, 32)
	for i := range cube.Data {
		cube.Data[i] = complex(1, 0)
	}
	dets := CFAR(cube, 1, 4, 1.5, 0, 4)
	if len(dets) != 0 {
		t.Errorf("flat field produced %d detections", len(dets))
	}
}

func TestStereoRecoversUniformDisparity(t *testing.T) {
	const w, h, trueD, nDisp = 64, 32, 3, 8
	rng := rand.New(rand.NewSource(6))
	ref := NewImage(w, h)
	for i := range ref.Pix {
		ref.Pix[i] = rng.Float64()
	}
	// Target is ref shifted right by trueD: target(x) = ref(x - trueD),
	// so ref(x) == target(x + trueD).
	target := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x-trueD >= 0 {
				target.Set(x, y, ref.At(x-trueD, y))
			} else {
				target.Set(x, y, rng.Float64())
			}
		}
	}
	errs := make([]Image, nDisp)
	for d := 0; d < nDisp; d++ {
		diff := NewImage(w, h)
		if err := DiffImage(ref, target, diff, d, 0, h); err != nil {
			t.Fatal(err)
		}
		errs[d] = NewImage(w, h)
		if err := ErrorImage(diff, errs[d], 2, 0, h); err != nil {
			t.Fatal(err)
		}
	}
	depth := NewImage(w, h)
	if err := DepthMin(errs, depth, 0, h); err != nil {
		t.Fatal(err)
	}
	// Interior pixels (valid correspondence, full windows) must recover
	// the true disparity.
	wrong := 0
	for y := 4; y < h-4; y++ {
		for x := 4; x < w-trueD-4; x++ {
			if int(depth.At(x, y)) != trueD {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("%d interior pixels missed disparity %d", wrong, trueD)
	}
}

func TestStereoShapeErrors(t *testing.T) {
	a := NewImage(4, 4)
	b := NewImage(5, 4)
	if err := DiffImage(a, b, a, 0, 0, 4); err == nil {
		t.Error("diff shape mismatch accepted")
	}
	if err := ErrorImage(a, b, 1, 0, 4); err == nil {
		t.Error("error shape mismatch accepted")
	}
	if err := DepthMin(nil, a, 0, 4); err == nil {
		t.Error("empty error stack accepted")
	}
	if err := DepthMin([]Image{b}, a, 0, 4); err == nil {
		t.Error("depth shape mismatch accepted")
	}
}
