package adapt

import (
	"math"
	"sync"
	"time"

	"pipemap/internal/core"
	"pipemap/internal/dp"
	"pipemap/internal/model"
	"pipemap/internal/obs"
)

// Solve paths reported by SolveCache.Resolve: how the answer was obtained,
// in decreasing order of cheapness.
const (
	// PathMemo returned a memoized result without touching a solver.
	PathMemo = "memo"
	// PathIncremental re-solved only the DP layers invalidated by the
	// changed task costs.
	PathIncremental = "incremental"
	// PathFullDP ran a full DP solve.
	PathFullDP = "dp"
	// PathGreedy ran the greedy heuristic (budget routed away from DP).
	PathGreedy = "greedy"
)

// memoCap bounds the memoized-results map; oldest entries are evicted
// first. Adaptive controllers oscillate between a handful of cost states
// (hysteresis, rollback, cooldown), so a small cache captures nearly all
// repeats.
const memoCap = 64

// SolveCache is the cross-step memoization layer between the adaptive
// controller and the solvers. Results are keyed by a canonical hash of the
// instance — every cost function sampled at exactly the integer points the
// solvers evaluate, plus the platform, solver options, and the
// budget-selected algorithm — so two ticks with bit-identical costs hit
// the cache no matter how the chain was materialized (task names never
// enter the hash). On a miss with an unchanged structure, the cache diffs
// the per-task execution hashes against the previous tick to recover the
// exact changed-task set and routes it to the retained incremental DP
// solver; only structural changes (platform size, memory models, edge
// costs, options) force a full rebuild.
//
// The canonical hash samples Exec and ICom at p = 1..P and ECom at every
// (ps, pr) in 1..P x 1..P — precisely the grid the DP tabulates — so hash
// equality implies the solvers see bit-identical inputs and the memoized
// mapping is exactly what a fresh solve would return.
//
// A SolveCache is safe for concurrent use; a fleet of controllers may
// share one instance per pipeline spec, though each cache retains one
// incremental solver and serializes solves on it.
type SolveCache struct {
	mu sync.Mutex

	sig      uint64   // structural signature; 0 = empty cache
	execHash []uint64 // per-task exec sample hash of the last solved tick
	prevOK   bool     // execHash describes a completed solve
	solver   *dp.Solver
	results  map[uint64]memoEntry
	order    []uint64 // FIFO eviction order

	stats            obs.CacheStats
	fullSolves       int64
	incrementalSolve int64

	scratch []uint64 // per-tick exec hashes
	changed []int    // changed-task scratch
}

type memoEntry struct {
	modules    []model.Module
	algorithm  core.Algorithm
	throughput float64
	latency    float64
}

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{results: map[uint64]memoEntry{}}
}

// SolveCacheStats is a point-in-time snapshot of cache effectiveness.
type SolveCacheStats struct {
	// Hits, Misses and Invalidations count memo lookups and structural
	// resets.
	Hits, Misses, Invalidations int64
	// HitRate is Hits/(Hits+Misses), 0 before any lookup.
	HitRate float64
	// FullSolves and IncrementalSolves split the misses by how they were
	// solved (full DP or greedy vs incremental DP).
	FullSolves, IncrementalSolves int64
}

// Stats snapshots the cache counters.
func (sc *SolveCache) Stats() SolveCacheStats {
	if sc == nil {
		return SolveCacheStats{}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return SolveCacheStats{
		Hits:              sc.stats.Hits(),
		Misses:            sc.stats.Misses(),
		Invalidations:     sc.stats.Invalidations(),
		HitRate:           sc.stats.HitRate(),
		FullSolves:        sc.fullSolves,
		IncrementalSolves: sc.incrementalSolve,
	}
}

// Publish copies the cache counters into reg under adapt.memo.* gauges.
func (sc *SolveCache) Publish(reg *obs.Registry) {
	if sc == nil || reg == nil {
		return
	}
	sc.stats.Publish(reg, "adapt.memo")
	sc.mu.Lock()
	full, incr := sc.fullSolves, sc.incrementalSolve
	sc.mu.Unlock()
	reg.Set("adapt.memo.full_solves", float64(full))
	reg.Set("adapt.memo.incremental_solves", float64(incr))
}

// FNV-1a folded word-wise over 64-bit values: cheap, deterministic, and
// collision-resistant enough for a 64-entry memo keyed by sampled floats.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mix(h, v uint64) uint64 {
	h ^= v
	return h * fnvPrime
}

func mixF(h uint64, f float64) uint64 { return mix(h, math.Float64bits(f)) }

func mixB(h uint64, b bool) uint64 {
	if b {
		return mix(h, 1)
	}
	return mix(h, 2)
}

// execTaskHash samples one task's execution cost at every per-instance
// processor count the DP can evaluate it at.
func execTaskHash(t model.Task, P int) uint64 {
	h := fnvOffset
	for p := 1; p <= P; p++ {
		h = mixF(h, t.Exec.Eval(p))
	}
	return h
}

// structuralSig hashes everything except the per-task execution costs:
// chain shape, memory models, replicability, minimum processors, internal
// and external edge costs, the platform, the solver options, and the
// selected algorithm. A change here invalidates the retained solver, not
// just the memo entries.
func structuralSig(chain *model.Chain, pl model.Platform, opt ResolveOptions, algo core.Algorithm) uint64 {
	P := pl.Procs
	h := fnvOffset
	h = mix(h, uint64(chain.Len()))
	h = mix(h, uint64(P))
	h = mixF(h, pl.MemPerProc)
	h = mixB(h, opt.DisableReplication)
	h = mixB(h, opt.DisableClustering)
	h = mix(h, uint64(algo))
	for _, t := range chain.Tasks {
		h = mixF(h, t.Mem.Fixed)
		h = mixF(h, t.Mem.Data)
		h = mixF(h, t.Mem.Buffer)
		h = mixB(h, t.Replicable)
		h = mix(h, uint64(int64(t.MinProcs)))
	}
	for _, f := range chain.ICom {
		for p := 1; p <= P; p++ {
			h = mixF(h, f.Eval(p))
		}
	}
	for _, f := range chain.ECom {
		for ps := 1; ps <= P; ps++ {
			for pr := 1; pr <= P; pr++ {
				h = mixF(h, f.Eval(ps, pr))
			}
		}
	}
	return h
}

// pickAlgorithm replicates Resolve's budget routing (and core's Auto
// selection when no budget is set) so the cache knows which engine a miss
// will run before hashing: the algorithm is part of the key, because DP
// and greedy legitimately return different mappings for the same costs.
func pickAlgorithm(chain *model.Chain, pl model.Platform, opt ResolveOptions) core.Algorithm {
	p, k := float64(pl.Procs), float64(chain.Len())
	est := p * p * p * p * k * k * k
	if opt.Budget > 0 {
		if est/dpOpsPerSecond > opt.Budget.Seconds() {
			return core.Greedy
		}
		return core.DP
	}
	if est <= autoDPBudget {
		return core.DP
	}
	return core.Greedy
}

// autoDPBudget mirrors core's Auto threshold (P^4 k^3 <= 5e9 picks DP).
const autoDPBudget = 5e9

// CanonicalStructSig exposes the cache's structural canonicalization for
// callers that need to group instances into solver families: two
// (chain, platform, options) triples with equal signatures share chain
// shape, memory models, replicability, minimum processors, internal and
// external edge costs, platform, solver options, and the budget-selected
// algorithm — everything except the per-task execution costs. The fleet
// scheduler keys its per-family SolveCache instances on this signature so
// structurally different tenant specs never thrash one cache's
// invalidation path.
func CanonicalStructSig(chain *model.Chain, pl model.Platform, opt ResolveOptions) uint64 {
	return structuralSig(chain, pl, opt, pickAlgorithm(chain, pl, opt))
}

// CanonicalSpecKey extends CanonicalStructSig with the per-task
// execution-cost hashes, sampling every cost function at exactly the
// integer points the solvers evaluate: it is the full solve-once-place-many
// key. Key equality implies the solvers see bit-identical inputs, so one
// solved mapping serves every spec with the same key (task names never
// enter the hash).
func CanonicalSpecKey(chain *model.Chain, pl model.Platform, opt ResolveOptions) uint64 {
	key := CanonicalStructSig(chain, pl, opt)
	for i := range chain.Tasks {
		key = mix(key, execTaskHash(chain.Tasks[i], pl.Procs))
	}
	return key
}

// Resolve is the cache-aware counterpart of the package-level Resolve: it
// returns the identical result a fresh budgeted re-solve would produce,
// the measured decision latency, and the path that produced it (PathMemo,
// PathIncremental, PathFullDP or PathGreedy).
func (sc *SolveCache) Resolve(chain *model.Chain, pl model.Platform, opt ResolveOptions) (core.Result, time.Duration, string, error) {
	start := time.Now()
	if err := chain.Validate(); err != nil {
		return core.Result{}, time.Since(start), "", err
	}
	if err := pl.Validate(); err != nil {
		return core.Result{}, time.Since(start), "", err
	}
	algo := pickAlgorithm(chain, pl, opt)

	sc.mu.Lock()
	defer sc.mu.Unlock()

	sig := structuralSig(chain, pl, opt, algo)
	k := chain.Len()
	if cap(sc.scratch) < k {
		sc.scratch = make([]uint64, k)
	}
	hashes := sc.scratch[:k]
	key := sig
	for i := range chain.Tasks {
		hashes[i] = execTaskHash(chain.Tasks[i], pl.Procs)
		key = mix(key, hashes[i])
	}

	if sig != sc.sig {
		// Structural change: every memo entry and the retained solver
		// describe a different instance.
		if sc.sig != 0 {
			sc.stats.Invalidate()
		}
		sc.sig = sig
		sc.solver = nil
		sc.prevOK = false
		sc.results = map[uint64]memoEntry{}
		sc.order = sc.order[:0]
	}

	if ent, ok := sc.results[key]; ok {
		sc.stats.Hit()
		res := core.Result{
			Mapping:    model.Mapping{Chain: chain, Modules: append([]model.Module(nil), ent.modules...)},
			Algorithm:  ent.algorithm,
			Throughput: ent.throughput,
			Latency:    ent.latency,
		}
		res.Unconstrained = res.Mapping
		return res, time.Since(start), PathMemo, nil
	}
	sc.stats.Miss()

	var (
		res  core.Result
		path string
		err  error
	)
	if algo == core.DP && !opt.DisableClustering {
		res, path, err = sc.solveDP(chain, pl, opt, hashes)
	} else {
		res, _, err = Resolve(chain, pl, ResolveOptions{
			Budget:             opt.Budget,
			DisableReplication: opt.DisableReplication,
			DisableClustering:  opt.DisableClustering,
			Trace:              opt.Trace,
			Metrics:            opt.Metrics,
		})
		path = PathGreedy
		if algo == core.DP {
			path = PathFullDP
		}
		sc.fullSolves++
	}
	if err != nil {
		sc.prevOK = false
		return core.Result{}, time.Since(start), path, err
	}

	// Record this tick as the incremental baseline and memoize the result.
	if cap(sc.execHash) < k {
		sc.execHash = make([]uint64, k)
	}
	sc.execHash = sc.execHash[:k]
	copy(sc.execHash, hashes)
	sc.prevOK = true
	if len(sc.order) >= memoCap {
		delete(sc.results, sc.order[0])
		sc.order = sc.order[:copy(sc.order, sc.order[1:])]
	}
	sc.results[key] = memoEntry{
		modules:    append([]model.Module(nil), res.Mapping.Modules...),
		algorithm:  res.Algorithm,
		throughput: res.Throughput,
		latency:    res.Latency,
	}
	sc.order = append(sc.order, key)
	return res, time.Since(start), path, nil
}

// solveDP runs the DP engine, incrementally when the previous tick solved
// the same structure and left per-task hashes to diff against.
func (sc *SolveCache) solveDP(chain *model.Chain, pl model.Platform, opt ResolveOptions, hashes []uint64) (core.Result, string, error) {
	dpOpt := dp.Options{
		DisableReplication: opt.DisableReplication,
		Trace:              opt.Trace,
		Metrics:            opt.Metrics,
	}
	path := PathFullDP
	var (
		m   model.Mapping
		err error
	)
	switch {
	case sc.solver == nil:
		sc.solver, err = dp.NewSolver(chain, pl, dpOpt)
		if err != nil {
			return core.Result{}, path, err
		}
		m, err = sc.solver.Solve()
		sc.fullSolves++
	case sc.prevOK:
		// Diff the per-task exec hashes to recover the changed set; the
		// caller's belief about what moved is never trusted.
		sc.changed = sc.changed[:0]
		for i, h := range hashes {
			if h != sc.execHash[i] {
				sc.changed = append(sc.changed, i)
			}
		}
		m, err = sc.solver.Resolve(chain, sc.changed)
		path = PathIncremental
		sc.incrementalSolve++
	default:
		// The solver exists but the last attempt failed, so its tables may
		// hold a mix of cost states; mark every task changed to force a
		// full retabulation and recompute.
		sc.changed = sc.changed[:0]
		for i := range hashes {
			sc.changed = append(sc.changed, i)
		}
		m, err = sc.solver.Resolve(chain, sc.changed)
		sc.fullSolves++
	}
	if err != nil {
		return core.Result{}, path, err
	}
	// The solver's mapping aliases its scratch; detach before it escapes.
	m.Modules = append([]model.Module(nil), m.Modules...)
	res := core.Result{
		Mapping:       m,
		Algorithm:     core.DP,
		Throughput:    m.Throughput(),
		Latency:       m.Latency(),
		Unconstrained: m,
	}
	return res, path, nil
}
