package adapt

import (
	"os"
	"strings"
	"sync"
	"testing"

	"pipemap/internal/core"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// twoStage returns a two-task non-replicable chain with free communication:
// with clustering disabled the only mapping freedom is the processor split,
// so solver decisions are easy to predict in tests.
func twoStage(aC2, bC2 float64) (*model.Chain, model.Platform) {
	chain := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: aC2}},
			{Name: "b", Exec: model.PolyExec{C2: bC2}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	return chain, model.Platform{Procs: 8, MemPerProc: 1}
}

// mapStr renders a mapping value (String has a pointer receiver).
func mapStr(m model.Mapping) string { return (&m).String() }

func mustMapping(t *testing.T, chain *model.Chain, pl model.Platform, modules []model.Module) model.Mapping {
	t.Helper()
	m := model.Mapping{Chain: chain, Modules: modules}
	if err := m.Validate(pl); err != nil {
		t.Fatalf("test mapping invalid: %v", err)
	}
	return m
}

func TestControllerHoldsBelowThreshold(t *testing.T) {
	chain, pl := twoStage(8, 1)
	// Suboptimal split: optimal is [a p=7][b p=1] (period 8/7), this one's
	// period is 8/6, a ~16.7% candidate gain — below a 50% threshold.
	initial := mustMapping(t, chain, pl, []model.Module{
		{Lo: 0, Hi: 1, Procs: 6, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 2, Replicas: 1},
	})
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: initial,
		Threshold: 0.50, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Step(Observation{Throughput: 0.75})
	if d.Action != ActionHold {
		t.Fatalf("action %q, want hold: %s", d.Action, d.Reason)
	}
	if !strings.Contains(d.Reason, "below") {
		t.Errorf("hold reason %q does not mention the threshold", d.Reason)
	}
	if d.PredictedGain <= 0 || d.PredictedGain >= 0.5 {
		t.Errorf("predicted gain %g outside (0, 0.5)", d.PredictedGain)
	}
	if c.Generation() != 0 || mapStr(c.Mapping()) != initial.String() {
		t.Errorf("hold decision changed the mapping: gen %d, %s", c.Generation(), mapStr(c.Mapping()))
	}
}

func TestControllerMigratesAboveThreshold(t *testing.T) {
	chain, pl := twoStage(8, 1)
	initial := mustMapping(t, chain, pl, []model.Module{
		{Lo: 0, Hi: 1, Procs: 6, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 2, Replicas: 1},
	})
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: initial,
		Threshold: 0.05, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Step(Observation{Throughput: 0.75})
	if d.Action != ActionMigrate {
		t.Fatalf("action %q, want migrate: %s", d.Action, d.Reason)
	}
	if c.Generation() != 1 {
		t.Errorf("generation %d after migration, want 1", c.Generation())
	}
	if got := mapStr(c.Mapping()); got != d.Candidate {
		t.Errorf("installed mapping %s, decision candidate %s", got, d.Candidate)
	}
	if c.Mapping().Modules[0].Procs != 7 {
		t.Errorf("migrated to %s, want [a p=7][b p=1]", mapStr(c.Mapping()))
	}
}

func TestControllerRollsBackOnRegression(t *testing.T) {
	chain, pl := twoStage(8, 1)
	initial := mustMapping(t, chain, pl, []model.Module{
		{Lo: 0, Hi: 1, Procs: 6, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 2, Replicas: 1},
	})
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: initial,
		Threshold: 0.05, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Step(Observation{Throughput: 0.75})
	if d.Action != ActionMigrate {
		t.Fatalf("setup migration did not happen: %s", d.Reason)
	}
	migrated := mapStr(c.Mapping())

	// The first post-migration segment regresses 60% — far past the 20%
	// default tolerance — so the controller must revert.
	d = c.Step(Observation{Throughput: 0.30})
	if d.Action != ActionRollback {
		t.Fatalf("action %q, want rollback: %s", d.Action, d.Reason)
	}
	if got := mapStr(c.Mapping()); got != initial.String() {
		t.Errorf("rolled back to %s, want the pre-migration mapping %s", got, initial.String())
	}
	st := c.Status()
	if st.Rollbacks != 1 || st.Generation != 2 {
		t.Errorf("rollbacks=%d generation=%d, want 1 and 2", st.Rollbacks, st.Generation)
	}
	if st.ObservedGain >= 0 {
		t.Errorf("observed gain %g after a regression, want negative", st.ObservedGain)
	}

	// During cooldown the controller holds even though the vetoed candidate
	// still looks better on paper.
	d = c.Step(Observation{Throughput: 0.75})
	if d.Action != ActionHold || !strings.Contains(d.Reason, "cooldown") {
		t.Fatalf("during cooldown got %q (%s), want a cooldown hold", d.Action, d.Reason)
	}
	for i := 0; i < 2; i++ {
		d = c.Step(Observation{Throughput: 0.75})
	}
	// Cooldown over: the candidate re-emerges but stays vetoed.
	d = c.Step(Observation{Throughput: 0.75})
	if d.Action != ActionHold || !strings.Contains(d.Reason, "vetoed") {
		t.Fatalf("after cooldown got %q (%s), want a vetoed hold", d.Action, d.Reason)
	}
	if d.Candidate != migrated {
		t.Errorf("vetoed candidate %s, want %s", d.Candidate, migrated)
	}
}

// healthFor fabricates a health model for the mapping: every stage fully
// live except the listed per-stage death counts, with latency windows left
// empty so refitting stays gated and the pure remap path is isolated.
func healthFor(m model.Mapping, deaths map[int]int64) live.Health {
	h := live.Health{Stages: make([]live.StageHealth, len(m.Modules))}
	for i, mod := range m.Modules {
		liveN := mod.Replicas - int(deaths[i])
		if liveN < 1 {
			liveN = 1
		}
		h.Stages[i] = live.StageHealth{
			Stage: i, Replicas: mod.Replicas, Live: liveN, Deaths: deaths[i],
		}
	}
	return h
}

// TestControllerRemapAgreementAcrossDeaths kills one instance per decision
// cycle across mapping generations and checks that the controller's
// surviving processor count and re-solve agree exactly with core.Remap fed
// the same cumulative loss — the degraded-mode ground truth. Divergence
// here is the drift bug this test exists to catch.
func TestControllerRemapAgreementAcrossDeaths(t *testing.T) {
	f, err := os.Open("../../specs/threestage.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chain, pl, err := core.ParseChainSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{Chain: chain, Platform: pl, Algorithm: core.DP}
	res, err := core.Map(req)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: res.Mapping, Threshold: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}

	lost := 0
	deaths := map[int]int64{}
	lastGen := 0
	for round := 0; round < 3; round++ {
		cur := c.Mapping()
		if c.Generation() != lastGen {
			// A migration rebuilt the data plane: the fabricated monitor
			// starts fresh, like the runtime's per-generation monitors.
			deaths = map[int]int64{}
			lastGen = c.Generation()
		}
		// Kill one more instance of the first stage that still has a spare
		// replica under the current mapping.
		stage := -1
		for i, mod := range cur.Modules {
			if int64(mod.Replicas-1) > deaths[i] {
				stage = i
				break
			}
		}
		if stage < 0 {
			t.Fatalf("round %d: no stage with a spare replica in %s", round, cur.String())
		}
		deaths[stage]++
		lost += cur.Modules[stage].Procs

		d := c.Step(Observation{Health: healthFor(cur, deaths), Throughput: 1})

		if got := c.Platform().Procs; got != pl.Procs-lost {
			t.Fatalf("round %d: surviving procs %d, want %d (%d lost)", round, got, pl.Procs-lost, lost)
		}
		want, err := core.Remap(req, lost)
		if err != nil {
			t.Fatalf("round %d: remap: %v", round, err)
		}
		if d.Candidate != want.Mapping.String() {
			t.Fatalf("round %d: controller candidate %s, core.Remap says %s",
				round, d.Candidate, want.Mapping.String())
		}
	}
	if c.Status().LostProcs != lost {
		t.Errorf("status reports %d lost procs, want %d", c.Status().LostProcs, lost)
	}
}

// TestControllerDeathAccountingClampedPerGeneration re-reports the same
// death count across segments of one generation (as re-built segment runs
// do) and checks the loss is not double counted.
func TestControllerDeathAccountingClampedPerGeneration(t *testing.T) {
	f, err := os.Open("../../specs/threestage.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chain, pl, err := core.ParseChainSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(core.Request{Chain: chain, Platform: pl, Algorithm: core.DP})
	if err != nil {
		t.Fatal(err)
	}
	// A sky-high threshold pins the controller on generation 0 so the same
	// health is ingested repeatedly.
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: res.Mapping, Threshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stage := -1
	for i, mod := range res.Mapping.Modules {
		if mod.Replicas > 1 {
			stage = i
			break
		}
	}
	if stage < 0 {
		t.Fatalf("no replicated stage in %s", res.Mapping.String())
	}
	want := res.Mapping.Modules[stage].Procs
	for seg := 0; seg < 4; seg++ {
		c.Step(Observation{Health: healthFor(res.Mapping, map[int]int64{stage: 1}), Throughput: 1})
		if got := c.Status().LostProcs; got != want {
			t.Fatalf("segment %d: lost %d procs, want %d (single death double counted)", seg, got, want)
		}
	}
	// Deaths beyond Replicas-1 are executor re-kill artifacts, not new
	// processor loss.
	huge := int64(res.Mapping.Modules[stage].Replicas + 3)
	c.Step(Observation{Health: healthFor(res.Mapping, map[int]int64{stage: huge}), Throughput: 1})
	maxLoss := (res.Mapping.Modules[stage].Replicas - 1) * res.Mapping.Modules[stage].Procs
	if got := c.Status().LostProcs; got != maxLoss {
		t.Fatalf("lost %d procs after %d reported deaths, want clamp at %d", got, huge, maxLoss)
	}
}

// TestControllerHammerConcurrentReaders drives Step while Status, Mapping,
// Platform and Generation are read concurrently; run with -race.
func TestControllerHammerConcurrentReaders(t *testing.T) {
	chain, pl := twoStage(8, 1)
	initial := mustMapping(t, chain, pl, []model.Module{
		{Lo: 0, Hi: 1, Procs: 6, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 2, Replicas: 1},
	})
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: initial,
		Threshold: 0.05, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := c.Status()
				if st.SurvivingProcs < 1 {
					t.Error("surviving procs below 1")
					return
				}
				_ = mapStr(c.Mapping())
				_ = c.Platform()
				_ = c.Generation()
			}
		}()
	}
	// Alternate strong and weak throughput so migrations, evaluations and
	// rollbacks all happen under the readers.
	for i := 0; i < 50; i++ {
		tput := 0.75
		if i%3 == 1 {
			tput = 0.2
		}
		c.Step(Observation{Throughput: tput})
	}
	close(done)
	wg.Wait()
}

func TestControllerRecordsIngestLoad(t *testing.T) {
	chain, pl := twoStage(8, 1)
	initial := mustMapping(t, chain, pl, []model.Module{
		{Lo: 0, Hi: 1, Procs: 6, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 2, Replicas: 1},
	})
	c, err := NewController(Config{
		Chain: chain, Platform: pl, Initial: initial,
		Threshold: 0.50, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Status().Ingest != nil {
		t.Fatal("ingest load set before any observation carried one")
	}
	c.Step(Observation{Throughput: 0.75, Ingest: &IngestLoad{
		QueueDepth: 7, InFlight: 2, AdmitRate: 10, ShedRate: 3,
	}})
	got := c.Status().Ingest
	if got == nil || got.QueueDepth != 7 || got.ShedRate != 3 {
		t.Fatalf("status ingest = %+v, want the observed load", got)
	}
	// An observation without ingest evidence keeps the last known load.
	c.Step(Observation{Throughput: 0.75})
	if got := c.Status().Ingest; got == nil || got.QueueDepth != 7 {
		t.Fatalf("status ingest after plain step = %+v, want retained load", got)
	}
}
