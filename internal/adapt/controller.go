package adapt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"pipemap/internal/estimate"
	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
)

// Config configures a Controller.
type Config struct {
	// Chain is the believed chain: the cost models the current mapping was
	// solved against. The controller refits a working copy; the original is
	// never mutated.
	Chain *model.Chain
	// Platform is the nominal platform. Instance deaths shrink the live
	// processor budget the controller re-solves against.
	Platform model.Platform
	// Initial is the generation-0 mapping in force when the loop starts.
	Initial model.Mapping
	// Threshold is the hysteresis gate: a migration needs a predicted
	// relative throughput gain of at least this much (default 0.10).
	Threshold float64
	// RollbackTolerance triggers a rollback when the first post-migration
	// segment's observed throughput falls more than this fraction below the
	// pre-migration observation (default 0.20).
	RollbackTolerance float64
	// MinStageSamples gates refitting on the monitor window: a stage's
	// cycle observation is used only when the window holds at least this
	// many latency samples (default 5).
	MinStageSamples int
	// FitWindow and FitCycles configure the per-stage online fitter: the
	// window of retained cycle means (default 8) and the minimum cycles
	// before a refit is trusted (default 2).
	FitWindow int
	FitCycles int
	// Budget bounds the decision latency of one re-solve; instances whose
	// estimated DP cost exceeds it use the greedy heuristic
	// (default 200ms).
	Budget time.Duration
	// CooldownCycles holds decisions after a rollback so the controller
	// does not oscillate back onto the mapping that just failed
	// (default 3).
	CooldownCycles int
	// RefitEpsilon is the relative dead-band on applying refitted cost
	// corrections (default 1e-3): a per-task correction moving less than
	// this is not applied, so the believed cost model stays bit-identical
	// and the solve cache can recognize the tick as unchanged. Corrections
	// keep gating against the last *applied* value, so sustained drift
	// still lands.
	RefitEpsilon float64
	// Cache memoizes re-solves across Step calls and routes small cost
	// updates to the incremental DP solver. Nil gets a private cache; pass
	// a shared one to pool memoization across controllers of the same
	// spec.
	Cache *SolveCache
	// TimeScale converts observed runtime seconds to model seconds: the
	// emulation speedup factor when driving fxrt.ModelPipeline (observed
	// seconds × TimeScale = model seconds, observed throughput ÷ TimeScale
	// = model throughput). Default 1.
	TimeScale float64
	// DisableReplication and DisableClustering are forwarded to every
	// re-solve, mirroring the knobs of the original request.
	DisableReplication bool
	DisableClustering  bool
	// Trace receives one span per controller phase (refit, resolve,
	// migrate) per decision cycle; nil disables.
	Trace *obs.Tracer
	// Metrics receives controller counters and gauges (adapt.* names);
	// nil disables.
	Metrics *obs.Registry
	// Flight, when set, records every migrate/rollback decision into the
	// flight recorder so /debug/flightrecorder interleaves controller
	// actions with request traces and sheds; nil disables.
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 0.10
	}
	if c.RollbackTolerance <= 0 {
		c.RollbackTolerance = 0.20
	}
	if c.MinStageSamples <= 0 {
		c.MinStageSamples = 5
	}
	if c.FitWindow <= 0 {
		c.FitWindow = 8
	}
	if c.FitCycles <= 0 {
		c.FitCycles = 2
	}
	if c.Budget <= 0 {
		c.Budget = 200 * time.Millisecond
	}
	if c.CooldownCycles <= 0 {
		c.CooldownCycles = 3
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.RefitEpsilon <= 0 {
		c.RefitEpsilon = 1e-3
	}
	if c.Cache == nil {
		c.Cache = NewSolveCache()
	}
	return c
}

// Decision actions.
const (
	// ActionHold keeps the current mapping.
	ActionHold = "hold"
	// ActionMigrate switches to the candidate mapping.
	ActionMigrate = "migrate"
	// ActionRollback reverts to the pre-migration mapping after the new
	// one underperformed.
	ActionRollback = "rollback"
)

// Decision is the outcome of one controller cycle, JSON-shaped for the
// /pipeline controller payload.
type Decision struct {
	Cycle      int    `json:"cycle"`
	Action     string `json:"action"`
	Reason     string `json:"reason"`
	Generation int    `json:"generation"` // generation in force after the decision
	Mapping    string `json:"mapping"`    // mapping in force after the decision
	Candidate  string `json:"candidate,omitempty"`
	Algorithm  string `json:"algorithm,omitempty"`
	// SolvePath reports how the re-solve was obtained: "memo" (cache hit,
	// no solve), "incremental" (partial DP recompute), "dp" or "greedy"
	// (full solve).
	SolvePath string `json:"solvePath,omitempty"`
	// ChangedTasks is the number of task cost corrections applied this
	// cycle (moves above RefitEpsilon).
	ChangedTasks int `json:"changedTasks"`
	// ResolveSeconds is the measured decision latency of the re-solve.
	ResolveSeconds float64 `json:"resolveSeconds"`
	// CurrentPredicted and CandidatePredicted are model throughputs under
	// the refitted models: the current mapping at live replica counts, and
	// the candidate.
	CurrentPredicted   float64 `json:"currentPredicted"`
	CandidatePredicted float64 `json:"candidatePredicted"`
	// PredictedGain is (candidate - current) / current.
	PredictedGain float64 `json:"predictedGain"`
	// ObservedThroughput is the segment's observed throughput in model
	// units.
	ObservedThroughput float64 `json:"observedThroughput"`
}

// StageRefit is the per-stage refit state surfaced in Status.
type StageRefit struct {
	Stage    int     `json:"stage"`
	Name     string  `json:"name"`
	Ratio    float64 `json:"ratio"`    // observed/predicted correction applied
	RMSE     float64 `json:"rmse"`     // refit residual against the window
	Cycles   int     `json:"cycles"`   // accepted cycle observations
	Rejected int     `json:"rejected"` // outliers rejected
}

// Status is the controller state served under the "controller" key of
// /pipeline.
type Status struct {
	Enabled    bool `json:"enabled"`
	Generation int  `json:"generation"`
	Cycles     int  `json:"cycles"`
	Migrations int  `json:"migrations"`
	Rollbacks  int  `json:"rollbacks"`
	// LostProcs and SurvivingProcs account instance deaths across all
	// generations against the nominal platform.
	LostProcs      int     `json:"lostProcs"`
	SurvivingProcs int     `json:"survivingProcs"`
	Threshold      float64 `json:"threshold"`
	Mapping        string  `json:"mapping"`
	// PredictedThroughput is the current mapping's model throughput under
	// the refitted cost models (model units).
	PredictedThroughput float64 `json:"predictedThroughput"`
	// PredictedGain is the last migration's predicted relative gain;
	// ObservedGain is the measured relative gain of its first
	// post-migration segment (0 until evaluated).
	PredictedGain float64 `json:"predictedGain"`
	ObservedGain  float64 `json:"observedGain"`
	// Refits is the per-stage refit state of the current generation.
	Refits []StageRefit `json:"refits,omitempty"`
	// Memo is the solve cache's effectiveness snapshot.
	Memo *SolveCacheStats `json:"memo,omitempty"`
	// LastDecision is the most recent cycle's decision.
	LastDecision *Decision `json:"lastDecision,omitempty"`
	// Ingest is the most recent observation's ingestion load, when the
	// runtime serves an ingestion plane.
	Ingest *IngestLoad `json:"ingest,omitempty"`
}

// IngestLoad is the ingestion data plane's load evidence attached to an
// observation: the controller records it so operators can correlate
// migrate/hold decisions with real admission pressure.
type IngestLoad struct {
	// QueueDepth and InFlight are point-in-time admission-queue and
	// dispatch occupancy.
	QueueDepth int   `json:"queueDepth"`
	InFlight   int64 `json:"inFlight"`
	// AdmitRate and ShedRate are windowed requests/second at the door.
	AdmitRate float64 `json:"admitRate"`
	ShedRate  float64 `json:"shedRate"`
}

// Observation is one completed segment's runtime evidence.
type Observation struct {
	// Health is the live monitor's health model after the segment.
	Health live.Health
	// Throughput is the segment's observed sink throughput in runtime
	// (wall-clock) units; the controller divides by TimeScale.
	Throughput float64
	// Ingest, when the segment served an ingestion plane, carries its load
	// evidence.
	Ingest *IngestLoad
}

// Controller is the closed-loop decision engine. Drive it with Step once
// per segment; it assumes the caller (Runtime) executes every migrate and
// rollback decision it returns. All methods are safe for concurrent use
// with a running Step (status readers never block the loop for long).
type Controller struct {
	mu  sync.Mutex
	cfg Config

	// Per-task beliefs: base execution models and the current and
	// generation-start multiplicative corrections. tracker gates which
	// correction moves are material (above RefitEpsilon) and records the
	// per-cycle change set.
	baseExec []model.CostFunc
	ratio    []float64
	genRatio []float64
	tracker  *estimate.ChangeTracker

	cur     model.Mapping // current mapping (Chain = refitted beliefs)
	gen     int
	fitters []*estimate.OnlineFitter
	refits  []StageRefit
	deaths  []int64 // per-stage deaths already accounted this generation
	lost    int     // processors lost across all generations

	cycles     int
	migrations int
	rollbacks  int

	// Rollback bookkeeping.
	prevMapping  model.Mapping
	preObserved  float64
	evalPending  bool
	cooldown     int
	vetoed       string
	predGain     float64
	obsGain      float64
	lastDecision *Decision
	lastIngest   *IngestLoad
}

// NewController validates the configuration and returns a controller at
// generation 0 on the initial mapping.
func NewController(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Chain == nil {
		return nil, fmt.Errorf("adapt: config has no chain")
	}
	if err := cfg.Chain.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Initial.Validate(cfg.Platform); err != nil {
		return nil, fmt.Errorf("adapt: initial mapping: %w", err)
	}
	c := &Controller{
		cfg:      cfg,
		baseExec: make([]model.CostFunc, cfg.Chain.Len()),
		ratio:    make([]float64, cfg.Chain.Len()),
		genRatio: make([]float64, cfg.Chain.Len()),
		tracker:  estimate.NewChangeTracker(cfg.Chain.Len(), cfg.RefitEpsilon),
	}
	for i := range c.baseExec {
		c.baseExec[i] = cfg.Chain.Tasks[i].Exec
		c.ratio[i] = 1
		c.genRatio[i] = 1
	}
	c.installMapping(cfg.Initial.Modules)
	return c, nil
}

// beliefChain materializes the current beliefs: the configured chain with
// every task's execution model scaled by its learned correction.
func (c *Controller) beliefChain() *model.Chain {
	tasks := append([]model.Task(nil), c.cfg.Chain.Tasks...)
	for i := range tasks {
		if c.ratio[i] != 1 {
			tasks[i].Exec = model.ScaleCost{F: c.baseExec[i], K: c.ratio[i]}
		} else {
			tasks[i].Exec = c.baseExec[i]
		}
	}
	return &model.Chain{Tasks: tasks, ICom: c.cfg.Chain.ICom, ECom: c.cfg.Chain.ECom}
}

// installMapping makes modules the current mapping, snapshots the beliefs
// as the generation baseline, and rebuilds the per-stage fitters against
// them.
func (c *Controller) installMapping(modules []model.Module) {
	copy(c.genRatio, c.ratio)
	chain := c.beliefChain()
	c.cur = model.Mapping{Chain: chain, Modules: append([]model.Module(nil), modules...)}
	c.deaths = make([]int64, len(modules))
	c.fitters = make([]*estimate.OnlineFitter, len(modules))
	c.refits = make([]StageRefit, len(modules))
	for i := range modules {
		mod := modules[i]
		prior := c.moduleResponse(chain, modules, i)
		c.fitters[i] = estimate.NewOnlineFitter(prior, mod.Procs, estimate.OnlineOptions{
			Window:     c.cfg.FitWindow,
			MinSamples: c.cfg.FitCycles,
		})
		c.refits[i] = StageRefit{Stage: i, Name: chain.TaskNames(mod.Lo, mod.Hi), Ratio: 1}
	}
}

// moduleResponse returns stage i's response time as a function of its own
// per-instance processor count, with the neighbouring modules' counts
// frozen at the current mapping: the prior an online fitter refits
// against. It mirrors Mapping.ResponseTimes (exec plus both edge
// transfers), which is exactly what the runtime observes per attempt.
func (c *Controller) moduleResponse(chain *model.Chain, modules []model.Module, i int) model.CostFunc {
	mod := modules[i]
	exec := chain.ModuleExec(mod.Lo, mod.Hi)
	var prevProcs, nextProcs int
	if i > 0 {
		prevProcs = modules[i-1].Procs
	}
	if i < len(modules)-1 {
		nextProcs = modules[i+1].Procs
	}
	ecom := chain.ECom
	lo, hi := mod.Lo, mod.Hi
	return model.CostFuncOf(func(p int) float64 {
		f := exec.Eval(p)
		if prevProcs > 0 {
			f += ecom[lo-1].Eval(prevProcs, p)
		}
		if nextProcs > 0 {
			f += ecom[hi-1].Eval(p, nextProcs)
		}
		return f
	})
}

// Generation returns the current mapping generation (0 before any
// migration).
func (c *Controller) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Mapping returns the mapping currently in force; its Chain carries the
// refitted beliefs, so monitor configs derived from it predict what the
// controller currently expects.
func (c *Controller) Mapping() model.Mapping {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Platform returns the surviving platform: the nominal platform minus the
// processors lost to instance deaths across all generations.
func (c *Controller) Platform() model.Platform {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.survivingLocked()
}

func (c *Controller) survivingLocked() model.Platform {
	pl := c.cfg.Platform
	pl.Procs -= c.lost
	return pl
}

// Status snapshots the controller state for /pipeline.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Enabled:             true,
		Generation:          c.gen,
		Cycles:              c.cycles,
		Migrations:          c.migrations,
		Rollbacks:           c.rollbacks,
		LostProcs:           c.lost,
		SurvivingProcs:      c.cfg.Platform.Procs - c.lost,
		Threshold:           c.cfg.Threshold,
		Mapping:             c.cur.String(),
		PredictedThroughput: c.cur.Throughput(),
		PredictedGain:       c.predGain,
		ObservedGain:        c.obsGain,
		Refits:              append([]StageRefit(nil), c.refits...),
	}
	memo := c.cfg.Cache.Stats()
	st.Memo = &memo
	if c.lastDecision != nil {
		d := *c.lastDecision
		st.LastDecision = &d
	}
	if c.lastIngest != nil {
		l := *c.lastIngest
		st.Ingest = &l
	}
	return st
}

// Step ingests one completed segment's observation and decides: hold,
// migrate, or roll back. The caller must execute migrate/rollback
// decisions (rebuild the data plane on Mapping()) before the next Step.
func (c *Controller) Step(o Observation) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	c.cycles++
	d := Decision{
		Cycle:              c.cycles,
		Action:             ActionHold,
		Generation:         c.gen,
		ObservedThroughput: o.Throughput / c.cfg.TimeScale,
	}

	if o.Ingest != nil {
		l := *o.Ingest
		c.lastIngest = &l
	}
	c.ingestDeaths(o.Health)
	c.ingestLatencies(o.Health)
	c.tracker.Reset()
	c.applyRefits()
	d.ChangedTasks = len(c.tracker.Changed())

	// Re-solve on the refitted beliefs and the surviving platform, through
	// the memo cache: an unchanged tick is a cache hit, a few moved costs
	// route to the incremental DP. The current mapping is re-anchored on
	// the same beliefs so its predicted throughput (status, monitor
	// config) tracks what the controller now believes, not the stale
	// generation-start models.
	chain := c.beliefChain()
	c.cur.Chain = chain
	cand, solveTime, path, err := c.cfg.Cache.Resolve(chain, c.survivingLocked(), ResolveOptions{
		Budget:             c.cfg.Budget,
		DisableReplication: c.cfg.DisableReplication,
		DisableClustering:  c.cfg.DisableClustering,
		Trace:              c.cfg.Trace,
		Metrics:            c.cfg.Metrics,
	})
	d.SolvePath = path
	d.ResolveSeconds = solveTime.Seconds()
	c.cfg.Metrics.Observe("adapt.resolve_seconds", d.ResolveSeconds)
	c.cfg.Cache.Publish(c.cfg.Metrics)
	if err != nil {
		d.Reason = fmt.Sprintf("re-solve failed: %v", err)
		c.finishCycle(&d, start)
		return d
	}
	d.Candidate = cand.Mapping.String()
	d.Algorithm = cand.Algorithm.String()
	d.CandidatePredicted = cand.Throughput
	d.CurrentPredicted = c.currentEffective(chain, o.Health)
	if d.CurrentPredicted > 0 {
		d.PredictedGain = (d.CandidatePredicted - d.CurrentPredicted) / d.CurrentPredicted
	}

	switch {
	case c.evalPending:
		c.decideEvaluation(&d)
	case c.cooldown > 0:
		c.cooldown--
		d.Reason = fmt.Sprintf("cooldown after rollback (%d cycles left)", c.cooldown)
	case d.Candidate == c.vetoed:
		d.Reason = "candidate was rolled back; vetoed"
	case d.Candidate == c.cur.String():
		d.Reason = "current mapping is (still) the best known"
	case d.PredictedGain < c.cfg.Threshold:
		d.Reason = fmt.Sprintf("predicted gain %.1f%% below %.1f%% threshold",
			100*d.PredictedGain, 100*c.cfg.Threshold)
	default:
		c.migrate(&d, cand.Mapping.Modules, ActionMigrate,
			fmt.Sprintf("predicted gain %.1f%% clears %.1f%% threshold",
				100*d.PredictedGain, 100*c.cfg.Threshold))
		c.predGain = d.PredictedGain
		c.preObserved = d.ObservedThroughput
		c.evalPending = true
	}
	c.finishCycle(&d, start)
	return d
}

// decideEvaluation judges the first post-migration segment: keep the new
// mapping or roll back to the previous one.
func (c *Controller) decideEvaluation(d *Decision) {
	post := d.ObservedThroughput
	c.evalPending = false
	if c.preObserved > 0 {
		c.obsGain = (post - c.preObserved) / c.preObserved
		c.cfg.Metrics.Set("adapt.observed_gain", c.obsGain)
	}
	if c.preObserved > 0 && post < c.preObserved*(1-c.cfg.RollbackTolerance) {
		prev := c.prevMapping
		if prev.Chain == nil || prev.TotalProcs() > c.survivingLocked().Procs {
			d.Reason = fmt.Sprintf("observed %.4f/s regressed %.1f%% but previous mapping no longer fits; holding",
				post, -100*c.obsGain)
			return
		}
		c.vetoed = c.cur.String()
		c.cooldown = c.cfg.CooldownCycles
		c.migrate(d, prev.Modules, ActionRollback,
			fmt.Sprintf("observed %.4f/s vs %.4f/s pre-migration (%.1f%% regression > %.0f%% tolerance)",
				post, c.preObserved, -100*c.obsGain, 100*c.cfg.RollbackTolerance))
		c.rollbacks++
		c.cfg.Metrics.Inc("adapt.rollbacks")
		return
	}
	d.Reason = fmt.Sprintf("migration evaluated: observed %.4f/s vs %.4f/s pre-migration; keeping",
		post, c.preObserved)
}

// migrate switches the controller onto modules and tags the decision.
func (c *Controller) migrate(d *Decision, modules []model.Module, action, reason string) {
	prev := c.cur
	c.installMapping(modules)
	c.prevMapping = prev
	c.gen++
	c.migrations++
	d.Action = action
	d.Reason = reason
	d.Generation = c.gen
	c.cfg.Metrics.Inc("adapt.migrations")
	if c.cfg.Trace.Enabled() {
		c.cfg.Trace.InstantArgs("adapt", action, 0, time.Now(), map[string]any{
			"generation": c.gen, "mapping": c.cur.String(), "reason": reason,
		})
	}
	c.cfg.Flight.Record(&obs.FlightEntry{
		Kind:    obs.FlightAdapt,
		Time:    time.Now(),
		Outcome: action,
		Detail:  fmt.Sprintf("gen %d -> %s: %s", c.gen, c.cur.String(), reason),
	})
}

// ingestDeaths accounts new instance deaths against the surviving
// processor budget. Each death of stage i costs the *current generation's*
// per-instance processor count of that stage — accounting against any
// other generation's mapping is exactly the drift Remap agreement tests
// guard against. Per generation a stage can lose at most Replicas-1
// instances (the runtime never removes the last live one); deaths beyond
// that are re-kills of a rebuilt segment run, not new processor loss.
func (c *Controller) ingestDeaths(h live.Health) {
	n := len(h.Stages)
	if n > len(c.cur.Modules) {
		n = len(c.cur.Modules)
	}
	for i := 0; i < n; i++ {
		seen := h.Stages[i].Deaths
		if max := int64(c.cur.Modules[i].Replicas - 1); seen > max {
			seen = max
		}
		if delta := seen - c.deaths[i]; delta > 0 {
			c.lost += int(delta) * c.cur.Modules[i].Procs
			c.deaths[i] = seen
		}
	}
	if max := c.cfg.Platform.Procs - 1; c.lost > max {
		c.lost = max // never remap onto zero processors
	}
	c.cfg.Metrics.Set("adapt.lost_procs", float64(c.lost))
}

// ingestLatencies feeds each stage's windowed mean service time (converted
// to model seconds) into its online fitter, gated on the monitor window
// holding enough samples.
func (c *Controller) ingestLatencies(h live.Health) {
	n := len(h.Stages)
	if n > len(c.fitters) {
		n = len(c.fitters)
	}
	for i := 0; i < n; i++ {
		lat := h.Stages[i].Latency
		if lat.Count >= int64(c.cfg.MinStageSamples) && lat.Mean > 0 {
			c.fitters[i].Observe(lat.Mean * c.cfg.TimeScale)
		}
	}
}

// cycleRatioClamp bounds one generation's learned correction so a burst of
// garbage observations cannot blow the models up beyond recovery.
const cycleRatioClamp = 50.0

// applyRefits refits every stage with enough evidence and folds the
// corrections into the per-task ratios. Moves inside the RefitEpsilon
// dead-band are dropped — the believed chain stays bit-identical, so the
// solve cache recognizes the tick — and applied moves are recorded in the
// tracker's change set. Returns whether any belief moved.
func (c *Controller) applyRefits() bool {
	moved := false
	start := time.Now()
	maxProcs := c.cfg.Platform.Procs
	for i, fit := range c.fitters {
		r, err := fit.Refit(maxProcs)
		if err != nil {
			continue // gated or degenerate: keep current beliefs
		}
		c.refits[i].RMSE = r.Stats.RMSE
		c.refits[i].Cycles = r.Samples
		c.refits[i].Rejected = r.Rejected
		if r.Ratio <= 0 {
			continue // prior predicted nothing; cannot scale task models
		}
		ratio := math.Min(math.Max(r.Ratio, 1/cycleRatioClamp), cycleRatioClamp)
		c.refits[i].Ratio = ratio
		mod := c.cur.Modules[i]
		for t := mod.Lo; t < mod.Hi; t++ {
			if c.tracker.Offer(t, c.genRatio[t]*ratio) {
				c.ratio[t] = c.tracker.Value(t)
				moved = true
			}
		}
	}
	if moved && c.cfg.Trace.Enabled() {
		c.cfg.Trace.SpanArgs("adapt", "refit", 0, start, time.Since(start), nil)
	}
	return moved
}

// currentEffective predicts the current mapping's throughput under the
// refitted beliefs at the *live* replica counts, so a mapping running
// degraded (dead instances) is compared honestly against candidates.
func (c *Controller) currentEffective(chain *model.Chain, h live.Health) float64 {
	modules := append([]model.Module(nil), c.cur.Modules...)
	n := len(h.Stages)
	if n > len(modules) {
		n = len(modules)
	}
	for i := 0; i < n; i++ {
		if live := h.Stages[i].Live; live >= 1 && live < modules[i].Replicas {
			modules[i].Replicas = live
		}
	}
	m := model.Mapping{Chain: chain, Modules: modules}
	return m.Throughput()
}

// finishCycle records the decision and cycle-level instrumentation.
func (c *Controller) finishCycle(d *Decision, start time.Time) {
	d.Mapping = c.cur.String()
	copyD := *d
	c.lastDecision = &copyD
	c.cfg.Metrics.Inc("adapt.cycles")
	c.cfg.Metrics.Set("adapt.generation", float64(c.gen))
	c.cfg.Metrics.Set("adapt.predicted_gain", d.PredictedGain)
	if c.cfg.Trace.Enabled() {
		c.cfg.Trace.SpanArgs("adapt", "cycle", 0, start, time.Since(start), map[string]any{
			"cycle": d.Cycle, "action": d.Action, "generation": d.Generation,
			"gain": d.PredictedGain, "reason": d.Reason,
		})
	}
}
