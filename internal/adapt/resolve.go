package adapt

import (
	"time"

	"pipemap/internal/core"
	"pipemap/internal/model"
	"pipemap/internal/obs"
)

// dpOpsPerSecond calibrates the DP cost estimate P^4·k^3 to wall time; it
// matches core's Auto budget (5e9 ≈ one second of solve).
const dpOpsPerSecond = 5e9

// ResolveOptions carries the solver knobs of one budgeted re-solve.
type ResolveOptions struct {
	// Budget bounds the acceptable decision latency: when the estimated DP
	// solve time exceeds it, the greedy heuristic is used instead. Zero
	// falls back to core's Auto selection.
	Budget time.Duration
	// DisableReplication and DisableClustering are forwarded to the solver.
	DisableReplication bool
	DisableClustering  bool
	// Trace and Metrics receive solver spans and counters; nil disables.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

// Resolve re-solves the mapping for a (refitted) chain on the surviving
// platform under a decision-latency budget, returning the solution and the
// measured solve time. The controller cannot afford a multi-second DP
// stall between segments, so instances whose estimated DP cost exceeds the
// budget are routed to the greedy heuristic.
func Resolve(chain *model.Chain, pl model.Platform, opt ResolveOptions) (core.Result, time.Duration, error) {
	req := core.Request{
		Chain:              chain,
		Platform:           pl,
		DisableReplication: opt.DisableReplication,
		DisableClustering:  opt.DisableClustering,
		Trace:              opt.Trace,
		Metrics:            opt.Metrics,
	}
	if opt.Budget > 0 {
		p, k := float64(pl.Procs), float64(chain.Len())
		if p*p*p*p*k*k*k/dpOpsPerSecond > opt.Budget.Seconds() {
			req.Algorithm = core.Greedy
		} else {
			req.Algorithm = core.DP
		}
	}
	start := time.Now()
	res, err := core.Map(req)
	return res, time.Since(start), err
}
