package adapt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pipemap/internal/fxrt"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// GenerationStats tags one mapping generation's observed execution.
type GenerationStats struct {
	Generation int    `json:"generation"`
	Mapping    string `json:"mapping"`
	// Rollback marks a generation entered by rolling back.
	Rollback bool `json:"rollback"`
	// DataSets and Throughput are the generation's streamed count and its
	// observed sink throughput in runtime units (mean over its segments
	// with a throughput window).
	DataSets   int     `json:"dataSets"`
	Throughput float64 `json:"throughput"`
	segments   int
	tputSum    float64
}

// RunStats summarizes one Runtime.Run.
type RunStats struct {
	DataSets    int
	Generations []GenerationStats
	// Migrations and Rollbacks mirror the controller's counters for the
	// run.
	Migrations int
	Rollbacks  int
}

// Runtime executes the closed loop on the fxrt fault-tolerant executor.
// The stream is processed in bounded segments: each segment runs on the
// current generation's pipeline, and the segment boundary is the migration
// drain point — Run returns only after every in-flight data set of the
// segment completes, so a switch never strands more than SegmentSize data
// sets. Between segments the controller observes the segment's health and
// decides; migrate/rollback decisions swap in a freshly built pipeline and
// monitor for the new mapping generation. The previously served monitor is
// flagged as draining for the duration of the swap, which /readyz reports
// as 503.
type Runtime struct {
	// Controller makes the decisions; required.
	Controller *Controller
	// Factory builds the data plane for a mapping generation; required.
	// If the returned pipeline carries no fault-tolerance options, a
	// one-retry policy is added so the fault-tolerant executor (the only
	// one that feeds the live monitor) runs it.
	Factory func(m model.Mapping, gen int) (*fxrt.Pipeline, error)
	// MonitorConfig derives the live-monitor config for a mapping; nil
	// uses live.ConfigFromMapping. Wrap it to Scale by the emulation
	// speedup.
	MonitorConfig func(m model.Mapping) live.Config
	// Source produces data set i of the overall stream; nil streams ints.
	Source func(i int) fxrt.DataSet
	// SegmentSize bounds the data sets per segment — the in-flight bound
	// of a migration drain (default 64).
	SegmentSize int
	// OnSegment, when set, observes every segment boundary (logging).
	OnSegment func(gen, segment int, stats fxrt.Stats, d Decision)

	mon atomic.Pointer[live.Monitor]

	mu   sync.Mutex
	gens []GenerationStats
}

// Monitor returns the monitor of the generation currently serving; wire it
// as live.ServerOptions.Source so the observability server follows
// migrations.
func (rt *Runtime) Monitor() *live.Monitor { return rt.mon.Load() }

// Generations snapshots the per-generation stats collected so far.
func (rt *Runtime) Generations() []GenerationStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]GenerationStats(nil), rt.gens...)
}

func (rt *Runtime) monitorConfig(m model.Mapping) live.Config {
	if rt.MonitorConfig != nil {
		return rt.MonitorConfig(m)
	}
	return live.ConfigFromMapping(m)
}

// build constructs the pipeline and monitor of one generation.
func (rt *Runtime) build(m model.Mapping, gen int) (*fxrt.Pipeline, *live.Monitor, error) {
	pl, err := rt.Factory(m, gen)
	if err != nil {
		return nil, nil, fmt.Errorf("adapt: building generation %d: %w", gen, err)
	}
	if pl.Retry.MaxRetries == 0 && pl.StageDeadline == 0 && pl.DeadAfter == 0 && len(pl.Faults) == 0 {
		// Force the fault-tolerant executor: the strict rendezvous executor
		// never feeds the live monitor, which would starve the controller.
		pl.Retry = fxrt.RetryPolicy{MaxRetries: 1}
	}
	mon := live.NewMonitor(rt.monitorConfig(m))
	pl.Monitor = mon
	return pl, mon, nil
}

// record folds one segment's stats into the generation ledger.
func (rt *Runtime) record(gen int, m model.Mapping, rollback bool, n int, tput float64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.gens) == 0 || rt.gens[len(rt.gens)-1].Generation != gen {
		rt.gens = append(rt.gens, GenerationStats{Generation: gen, Mapping: m.String(), Rollback: rollback})
	}
	g := &rt.gens[len(rt.gens)-1]
	g.DataSets += n
	if tput > 0 {
		g.tputSum += tput
		g.segments++
		g.Throughput = g.tputSum / float64(g.segments)
	}
}

// Run streams total data sets through the adaptive loop.
func (rt *Runtime) Run(total int) (RunStats, error) {
	if rt.Controller == nil || rt.Factory == nil {
		return RunStats{}, fmt.Errorf("adapt: runtime needs a Controller and a Factory")
	}
	if total <= 0 {
		return RunStats{}, fmt.Errorf("adapt: need at least one data set")
	}
	segSize := rt.SegmentSize
	if segSize <= 0 {
		segSize = 64
	}
	source := rt.Source
	if source == nil {
		source = func(i int) fxrt.DataSet { return i }
	}

	m := rt.Controller.Mapping()
	gen := rt.Controller.Generation()
	pl, mon, err := rt.build(m, gen)
	if err != nil {
		return RunStats{}, err
	}
	rt.mon.Store(mon)

	rollback := false
	streamed := 0
	segment := 0
	for streamed < total {
		n := segSize
		if rem := total - streamed; rem < n {
			n = rem
		}
		base := streamed
		stats, err := pl.Run(func(i int) fxrt.DataSet { return source(base + i) }, n, 0)
		if err != nil {
			return RunStats{}, fmt.Errorf("adapt: generation %d segment %d: %w", gen, segment, err)
		}
		streamed += n
		segment++
		rt.record(gen, m, rollback, n, stats.Throughput)

		d := rt.Controller.Step(Observation{Health: mon.Health(), Throughput: stats.Throughput})
		if rt.OnSegment != nil {
			rt.OnSegment(gen, segment, stats, d)
		}
		if d.Action == ActionMigrate || d.Action == ActionRollback {
			// The segment boundary already drained the old generation's
			// in-flight data sets; flag the serving monitor while the new
			// data plane is built so readiness reflects the switch window.
			mon.SetDraining(true)
			newM := rt.Controller.Mapping()
			newGen := rt.Controller.Generation()
			npl, nmon, err := rt.build(newM, newGen)
			if err != nil {
				mon.SetDraining(false)
				return RunStats{}, err
			}
			rt.mon.Store(nmon)
			mon.SetDraining(false)
			mon.Finish()
			pl, mon, m, gen = npl, nmon, newM, newGen
			rollback = d.Action == ActionRollback
		}
	}
	st := rt.Controller.Status()
	return RunStats{
		DataSets:    streamed,
		Generations: rt.Generations(),
		Migrations:  st.Migrations,
		Rollbacks:   st.Rollbacks,
	}, nil
}
