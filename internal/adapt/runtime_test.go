package adapt

import (
	"testing"

	"pipemap/internal/core"
	"pipemap/internal/fxrt"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// TestRuntimeCorrectsWrongCostModel is the end-to-end closed loop: the
// believed cost models say task a is heavy and b is cheap, so the solver
// gives a almost all processors — but the emulated ground truth is the
// opposite. The controller must observe the real stage service times,
// refit the models online, re-solve, live-migrate, and the post-migration
// generation's observed throughput must beat the pre-migration one.
func TestRuntimeCorrectsWrongCostModel(t *testing.T) {
	believed, pl := twoStage(8, 1)
	truth, _ := twoStage(1, 8)
	const speedup = 400.0

	res, err := core.Map(core.Request{
		Chain: believed, Platform: pl, Algorithm: core.DP, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Modules[0].Procs <= res.Mapping.Modules[1].Procs {
		t.Fatalf("precondition: believed solve %s should favor task a", res.Mapping.String())
	}

	ctrl, err := NewController(Config{
		Chain: believed, Platform: pl, Initial: res.Mapping,
		Threshold: 0.2, TimeScale: speedup, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{
		Controller: ctrl,
		Factory: func(m model.Mapping, gen int) (*fxrt.Pipeline, error) {
			// The data plane executes the truth, whatever the solver believed.
			return fxrt.ModelPipelineOn(m, truth, speedup)
		},
		MonitorConfig: func(m model.Mapping) live.Config {
			return live.ConfigFromMapping(m).Scale(speedup)
		},
		SegmentSize: 8,
	}
	stats, err := rt.Run(64)
	if err != nil {
		t.Fatal(err)
	}

	st := ctrl.Status()
	if st.Migrations < 1 {
		t.Fatalf("controller never migrated; last decision: %+v", st.LastDecision)
	}
	if st.Rollbacks != 0 {
		t.Errorf("unexpected rollback(s): %d", st.Rollbacks)
	}
	if st.Generation < 1 {
		t.Errorf("generation %d, want >= 1", st.Generation)
	}
	final := ctrl.Mapping()
	if final.Modules[1].Procs <= final.Modules[0].Procs {
		t.Errorf("final mapping %s still favors task a after refit", mapStr(final))
	}

	gens := stats.Generations
	if len(gens) < 2 {
		t.Fatalf("expected at least two generations, got %+v", gens)
	}
	pre, post := gens[0].Throughput, gens[len(gens)-1].Throughput
	if post <= pre {
		t.Errorf("post-migration observed throughput %.2f/s does not beat pre-migration %.2f/s", post, pre)
	}
	if stats.DataSets != 64 {
		t.Errorf("streamed %d data sets, want 64", stats.DataSets)
	}

	// The per-stage refits must have moved in the right direction: stage b
	// corrected upward, stage a downward.
	var sawUp bool
	for _, r := range st.Refits {
		if r.Ratio > 2 {
			sawUp = true
		}
	}
	// Refits reset at each generation; inspect the last migrate decision's
	// predicted gain instead when the new generation has not refit yet.
	if !sawUp && st.LastDecision != nil && st.PredictedGain <= 0 {
		t.Errorf("no upward refit recorded and no positive predicted gain: %+v", st.Refits)
	}
}

// TestRuntimeMonitorFollowsGenerations checks the served monitor pointer
// swaps on migration and the retired generation's monitor saw the drain
// markers — what /readyz keys off during the switch window.
func TestRuntimeMonitorFollowsGenerations(t *testing.T) {
	believed, pl := twoStage(8, 1)
	truth, _ := twoStage(1, 8)
	const speedup = 400.0
	res, err := core.Map(core.Request{
		Chain: believed, Platform: pl, Algorithm: core.DP, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(Config{
		Chain: believed, Platform: pl, Initial: res.Mapping,
		Threshold: 0.2, TimeScale: speedup, DisableClustering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var firstMon *live.Monitor
	rt := &Runtime{
		Controller: ctrl,
		Factory: func(m model.Mapping, gen int) (*fxrt.Pipeline, error) {
			return fxrt.ModelPipelineOn(m, truth, speedup)
		},
		MonitorConfig: func(m model.Mapping) live.Config {
			return live.ConfigFromMapping(m).Scale(speedup)
		},
		SegmentSize: 8,
	}
	rt.OnSegment = func(gen, segment int, stats fxrt.Stats, d Decision) {
		if firstMon == nil {
			firstMon = rt.Monitor()
		}
	}
	if _, err := rt.Run(48); err != nil {
		t.Fatal(err)
	}
	if ctrl.Generation() < 1 {
		t.Fatalf("no migration happened; cannot check monitor swap")
	}
	if rt.Monitor() == firstMon {
		t.Error("served monitor did not swap after migration")
	}
	var sawDrainStart, sawDrainEnd bool
	for _, ev := range firstMon.Events().History() {
		switch ev.Kind {
		case "drain-start":
			sawDrainStart = true
		case "drain-end":
			sawDrainEnd = true
		}
	}
	if !sawDrainStart || !sawDrainEnd {
		t.Errorf("retired monitor missing drain events (start=%v end=%v)", sawDrainStart, sawDrainEnd)
	}
	h := firstMon.Health()
	if !h.Finished {
		t.Error("retired generation's monitor not marked finished")
	}
}
