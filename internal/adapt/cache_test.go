package adapt

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"pipemap/internal/core"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// cacheChain is a three-task replicable chain small enough that the budget
// routes it to DP.
func cacheChain(scale []float64) (*model.Chain, model.Platform) {
	mk := func(i int, c2 float64) model.Task {
		exec := model.CostFunc(model.PolyExec{C2: c2})
		if scale != nil && scale[i] != 1 {
			exec = model.ScaleCost{F: exec, K: scale[i]}
		}
		return model.Task{Name: string(rune('a' + i)), Exec: exec, Replicable: true}
	}
	chain := &model.Chain{
		Tasks: []model.Task{mk(0, 6), mk(1, 3), mk(2, 2)},
		ICom:  []model.CostFunc{model.ZeroExec(), model.ZeroExec()},
		ECom:  []model.CommFunc{model.ZeroComm(), model.ZeroComm()},
	}
	return chain, model.Platform{Procs: 8, MemPerProc: 1}
}

var cacheOpt = ResolveOptions{Budget: time.Second}

// TestSolveCacheMemoHit: the same canonical instance must return the
// identical mapping without re-solving — the solve counters stay put and
// the hit counter moves.
func TestSolveCacheMemoHit(t *testing.T) {
	sc := NewSolveCache()
	chainA, pl := cacheChain(nil)
	first, _, path, err := sc.Resolve(chainA, pl, cacheOpt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathFullDP {
		t.Fatalf("first solve path %q, want %q", path, PathFullDP)
	}
	solvesAfterFirst := sc.Stats().FullSolves + sc.Stats().IncrementalSolves

	// A freshly materialized but bit-identical chain: pointer differs,
	// costs do not.
	chainB, _ := cacheChain(nil)
	second, _, path, err := sc.Resolve(chainB, pl, cacheOpt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathMemo {
		t.Fatalf("repeat solve path %q, want %q", path, PathMemo)
	}
	st := sc.Stats()
	if got := st.FullSolves + st.IncrementalSolves; got != solvesAfterFirst {
		t.Errorf("memo hit ran a solve: %d solves, want %d", got, solvesAfterFirst)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if !reflect.DeepEqual(first.Mapping.Modules, second.Mapping.Modules) {
		t.Errorf("memo returned a different mapping:\nfirst:  %v\nsecond: %v",
			&first.Mapping, &second.Mapping)
	}
	if first.Throughput != second.Throughput || first.Algorithm != second.Algorithm {
		t.Errorf("memo changed result metadata: %+v vs %+v", first, second)
	}
	if second.Mapping.Chain != chainB {
		t.Error("memo hit did not re-anchor the mapping on the caller's chain")
	}
}

// TestSolveCachePerturbationMisses: any cost change that reaches the cache
// (i.e. above the controller's epsilon gate, which drops sub-epsilon moves
// before they get here) must miss and re-solve incrementally, bit-identical
// to a fresh budgeted re-solve.
func TestSolveCachePerturbationMisses(t *testing.T) {
	sc := NewSolveCache()
	chain, pl := cacheChain(nil)
	if _, _, _, err := sc.Resolve(chain, pl, cacheOpt); err != nil {
		t.Fatal(err)
	}
	// Perturb one task by 0.1% — tiny, but applied, so the hash must move.
	pert, _ := cacheChain([]float64{1, 1.001, 1})
	got, _, path, err := sc.Resolve(pert, pl, cacheOpt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathIncremental {
		t.Fatalf("perturbed solve path %q, want %q", path, PathIncremental)
	}
	st := sc.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.IncrementalSolves != 1 {
		t.Errorf("stats after perturbation = %+v", st)
	}
	fresh, _, err2 := Resolve(pert, pl, cacheOpt)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !reflect.DeepEqual(got.Mapping.Modules, fresh.Mapping.Modules) {
		t.Errorf("incremental result diverged from fresh re-solve:\nincremental: %v\nfresh:       %v",
			&got.Mapping, &fresh.Mapping)
	}
	if got.Throughput != fresh.Throughput {
		t.Errorf("throughput diverged: %v vs %v", got.Throughput, fresh.Throughput)
	}
}

// TestSolveCacheNameInsensitive: two specs differing only in task names
// canonicalize to the same hash and share memo entries.
func TestSolveCacheNameInsensitive(t *testing.T) {
	sc := NewSolveCache()
	chain, pl := cacheChain(nil)
	if _, _, _, err := sc.Resolve(chain, pl, cacheOpt); err != nil {
		t.Fatal(err)
	}
	renamed, _ := cacheChain(nil)
	for i := range renamed.Tasks {
		renamed.Tasks[i].Name = "stage-" + string(rune('x'+i))
	}
	_, _, path, err := sc.Resolve(renamed, pl, cacheOpt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathMemo {
		t.Errorf("renamed spec path %q, want %q: task names leaked into the canonical hash", path, PathMemo)
	}
}

// TestSolveCacheStructuralInvalidation: a platform change is a different
// instance — the memo and solver are discarded, and the invalidation is
// counted.
func TestSolveCacheStructuralInvalidation(t *testing.T) {
	sc := NewSolveCache()
	chain, pl := cacheChain(nil)
	if _, _, _, err := sc.Resolve(chain, pl, cacheOpt); err != nil {
		t.Fatal(err)
	}
	small := pl
	small.Procs = 6
	_, _, path, err := sc.Resolve(chain, small, cacheOpt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathFullDP {
		t.Errorf("post-invalidation path %q, want %q", path, PathFullDP)
	}
	if st := sc.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// And back: the old entries are gone, so this is a miss, not a stale
	// hit against the 6-processor platform.
	res, _, _, err := sc.Resolve(chain, pl, cacheOpt)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, _ := Resolve(chain, pl, cacheOpt)
	if !reflect.DeepEqual(res.Mapping.Modules, fresh.Mapping.Modules) {
		t.Errorf("post-invalidation result wrong: %v vs fresh %v", &res.Mapping, &fresh.Mapping)
	}
}

// TestSolveCacheGreedyPath: instances the budget routes to greedy are
// memoized too, under the greedy-keyed hash.
func TestSolveCacheGreedyPath(t *testing.T) {
	sc := NewSolveCache()
	rng := rand.New(rand.NewSource(5))
	chain, pl := testutil.RandChain(rng,
		testutil.RandChainConfig{MinTasks: 4, MaxTasks: 4}, 16)
	// A budget far below the P^4 k^3 estimate forces greedy.
	opt := ResolveOptions{Budget: time.Nanosecond}
	res, _, path, err := sc.Resolve(chain, pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathGreedy || res.Algorithm != core.Greedy {
		t.Fatalf("path %q algo %v, want greedy", path, res.Algorithm)
	}
	_, _, path, err = sc.Resolve(chain, pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if path != PathMemo {
		t.Errorf("repeat greedy path %q, want %q", path, PathMemo)
	}
	// Same instance under a DP budget is a *different* key: greedy's memo
	// entry must not shadow the DP answer.
	dpRes, _, dpPath, err := sc.Resolve(chain, pl, ResolveOptions{Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if dpPath == PathMemo {
		t.Fatalf("algorithm change hit the greedy memo entry")
	}
	if dpRes.Algorithm != core.DP {
		t.Errorf("algo %v under a DP budget, want DP", dpRes.Algorithm)
	}
}

// TestSolveCacheRandomWalkMatchesFresh drives random perturbation walks
// through the cache and checks every returned result — memo, incremental,
// or full — against an uncached budgeted re-solve.
func TestSolveCacheRandomWalkMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := NewSolveCache()
		scale := []float64{1, 1, 1}
		for step := 0; step < 8; step++ {
			// Perturb a random subset (possibly none, possibly revisiting a
			// previous state so the memo gets genuine hits).
			for i := range scale {
				switch rng.Intn(4) {
				case 0:
					scale[i] = 1 + float64(rng.Intn(5))*0.25
				case 1:
					scale[i] = 1
				}
			}
			chain, pl := cacheChain(scale)
			got, _, _, err := sc.Resolve(chain, pl, cacheOpt)
			fresh, _, freshErr := Resolve(chain, pl, cacheOpt)
			if (err == nil) != (freshErr == nil) {
				t.Fatalf("seed %d step %d: error disagreement: cache=%v fresh=%v", seed, step, err, freshErr)
			}
			if err != nil {
				continue
			}
			if !reflect.DeepEqual(got.Mapping.Modules, fresh.Mapping.Modules) {
				t.Fatalf("seed %d step %d (scale %v): cache diverged\ncache: %v\nfresh: %v",
					seed, step, scale, &got.Mapping, &fresh.Mapping)
			}
			if got.Throughput != fresh.Throughput {
				t.Fatalf("seed %d step %d: throughput diverged: %v vs %v",
					seed, step, got.Throughput, fresh.Throughput)
			}
		}
	}
}

// TestControllerUnchangedTicksHitMemo: a controller fed observations that
// move no beliefs must route every re-solve after the first through the
// memo — the epsilon dead-band keeps the chain bit-identical and the cache
// recognizes it.
func TestControllerUnchangedTicksHitMemo(t *testing.T) {
	chain, pl := cacheChain(nil)
	initial := model.Mapping{Chain: chain, Modules: []model.Module{
		{Lo: 0, Hi: 3, Procs: 8, Replicas: 1},
	}}
	if err := initial.Validate(pl); err != nil {
		t.Fatal(err)
	}
	c, err := NewController(Config{Chain: chain, Platform: pl, Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	first := c.Step(Observation{Throughput: 0.5})
	if first.SolvePath == PathMemo {
		t.Fatalf("first cycle solve path %q: nothing to hit yet", first.SolvePath)
	}
	for i := 0; i < 3; i++ {
		d := c.Step(Observation{Throughput: 0.5})
		if d.SolvePath != PathMemo {
			t.Fatalf("cycle %d solve path %q, want %q (no beliefs moved)", d.Cycle, d.SolvePath, PathMemo)
		}
		if d.ChangedTasks != 0 {
			t.Errorf("cycle %d reports %d changed tasks, want 0", d.Cycle, d.ChangedTasks)
		}
	}
	st := c.Status()
	if st.Memo == nil || st.Memo.Hits < 3 {
		t.Errorf("controller status memo stats = %+v, want >= 3 hits", st.Memo)
	}
}

// TestSolveCacheConcurrent hammers one shared cache from many goroutines
// mixing repeated and perturbed instances; run under -race this pins the
// locking of the shared solver and memo map. Every result is checked
// against a fresh solve of its own instance.
func TestSolveCacheConcurrent(t *testing.T) {
	sc := NewSolveCache()
	scales := [][]float64{
		nil,
		{1.5, 1, 1},
		{1, 1.5, 1},
		{1, 1, 1.5},
	}
	type want struct {
		modules    []model.Module
		throughput float64
	}
	wants := make([]want, len(scales))
	for i, scl := range scales {
		chain, pl := cacheChain(scl)
		fresh, _, err := Resolve(chain, pl, cacheOpt)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want{fresh.Mapping.Modules, fresh.Throughput}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				which := rng.Intn(len(scales))
				chain, pl := cacheChain(scales[which])
				res, _, _, err := sc.Resolve(chain, pl, cacheOpt)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !reflect.DeepEqual(res.Mapping.Modules, wants[which].modules) ||
					res.Throughput != wants[which].throughput {
					errs <- "concurrent resolve returned a mapping for the wrong instance"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st := sc.Stats(); st.Hits == 0 {
		t.Error("concurrent hammer never hit the memo")
	}
}
