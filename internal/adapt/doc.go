// Package adapt is the closed-loop remapping controller (DESIGN.md §10),
// the control plane layered over the solver and the fault-tolerant
// runtime. The paper solves the mapping once, offline, against cost models
// fitted from a handful of profiled runs; adapt closes the loop at
// runtime:
//
//	observe  per-stage service times and replica liveness (obs/live.Monitor)
//	refit    the polynomial cost models online (estimate.OnlineFitter:
//	         windowed observations, MAD outlier rejection, sample-count
//	         confidence gating)
//	re-solve the mapping on the refitted models and the surviving
//	         processor count, under a decision-latency budget (DP when it
//	         fits the budget, greedy otherwise)
//	migrate  when the predicted throughput gain clears a hysteresis
//	         threshold: drain-and-switch on the fxrt executor with a
//	         bounded number of in-flight data sets, generation-tagged
//	         stats, and rollback if the new mapping underperforms
//
// Controller holds the decision logic and is driven one segment at a time
// through Step, which makes it deterministic and unit-testable. Runtime is
// the execution harness: it streams data sets through the current
// generation's pipeline in bounded segments, calls Step at each segment
// boundary (a natural drain point: every in-flight data set of the old
// generation completes before the swap), and executes the returned
// decision.
package adapt
