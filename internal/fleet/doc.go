// Package fleet is the multi-pipeline scheduler above the single-chain
// mapping machinery: it admits many tenant chain specs against one shared
// processor pool, partitions the pool into per-pipeline allocations by a
// weighted-priority policy, and maps each pipeline with the existing DP
// solver behind a solve-once-place-many cache — identical specs (by the
// canonical spec hash of package adapt) solve exactly once no matter how
// many tenants submit them.
//
// The paper's world is one chain on one processor pool; a production fleet
// serves thousands of concurrent pipelines on shared hardware. This
// package is the layer between: tenant arrival and departure, processor
// failure, preemptive eviction, and rebalancing are first-class events,
// each of which re-packs the pool and re-places only the pipelines whose
// allocation actually changed (unchanged pipelines keep their mapping
// without touching a solver; changed ones route through the per-family
// adapt.SolveCache, whose memo and incremental DP warm path make repeat
// allocations cheap).
//
// # Packing policy (normative)
//
// Pipelines are ranked by descending priority, then ascending minimum
// allocation, then admission order (earlier wins). Scanning in rank order,
// each pipeline reserves its minimum feasible allocation while it fits in
// the remaining pool; pipelines that do not fit are the eviction victims —
// so victims are always the lowest-priority pipelines, largest minimum
// first, newest first among equals. Surplus processors are then
// distributed to survivors proportionally to priority (largest-remainder
// rounding, capped per spec). The invariant enforced at every step: the
// sum of allocations never exceeds the surviving pool.
//
// With a processor grid configured, allocations are additionally rounded
// to rectangle-formable counts, the per-pipeline regions are packed onto
// the grid as disjoint rectangles (reusing machine.Pack), and every placed
// mapping must be machine.Feasible inside its region.
//
// Every invariant above ships as an executable property, fuzz, or race
// test in this package, not prose; see DESIGN.md §14.
package fleet
