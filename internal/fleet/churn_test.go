package fleet

import (
	"bufio"
	"math"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

var (
	churnSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
	churnTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
)

// promFleetSamples lints a Prometheus exposition (the same 0.0.4 checks
// the serve smoke applies) and returns the unlabelled fleet_* samples.
func promFleetSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	typed := map[string]bool{}
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := churnTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed comment line: %q", line)
				continue
			}
			typed[m[1]] = true
			continue
		}
		m := churnSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := m[1]
		family := name
		if !typed[family] {
			for _, suffix := range []string{"_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found && typed[base] {
					family = base
					break
				}
			}
		}
		if !typed[family] {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
		if strings.HasPrefix(name, "fleet_") && m[2] == "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				t.Errorf("sample %q: unparsable value %q", name, m[4])
				continue
			}
			out[name] = v
		}
	}
	return out
}

// TestChurnEndToEnd drives a virtual-clock tenant arrival/departure
// scenario with a mid-run processor failure and checks, at every event,
// that survivors stay feasible; at the end, that the rebalance count is
// bounded by the mutation count, the virtual-clock rebalance latency is
// exact, and the /fleet state and fleet_* exposition agree with the
// ground truth the test tracked independently.
func TestChurnEndToEnd(t *testing.T) {
	// Self-stepping virtual clock: every fleet clock read advances 1ms, so
	// each rebalance (two reads) measures exactly 1ms.
	clock := time.Unix(1_000_000, 0)
	reg := live.NewRegistry(live.Options{})
	f, err := New(Config{
		Pool:     model.Platform{Procs: 40},
		Registry: reg,
		Now: func() time.Time {
			clock = clock.Add(time.Millisecond)
			return clock
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	var (
		gtAdmitted, gtRejected, gtDeparted int64
		mutations                          int64 // successful mutating ops (1 rebalance each)
		liveIDs                            []int64
	)
	admit := func(pri, maxProcs int) {
		p, err := f.Admit(Spec{
			Tenant: "churn", Chain: genChain(rng, 2+rng.Intn(3)),
			Priority: pri, MaxProcs: maxProcs,
		})
		if err != nil {
			gtRejected++
			return
		}
		gtAdmitted++
		mutations++
		liveIDs = append(liveIDs, p.ID)
	}
	depart := func() {
		if len(liveIDs) == 0 {
			return
		}
		id := liveIDs[0]
		liveIDs = liveIDs[1:]
		if err := f.Depart(id); err == nil {
			gtDeparted++
			mutations++
		}
	}
	check := func(when string) {
		t.Helper()
		if err := checkPlacements(f, machine.Grid{}); err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if err := checkAccounting(f.Stats()); err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		// Preemption can evict pipelines the test still lists: reconcile
		// from the fleet's observable placements.
		placed := map[int64]bool{}
		for _, p := range f.Placements() {
			placed[p.ID] = true
		}
		kept := liveIDs[:0]
		for _, id := range liveIDs {
			if placed[id] {
				kept = append(kept, id)
			}
		}
		liveIDs = kept
	}

	// Morning: eight tenants arrive.
	for i := 0; i < 8; i++ {
		admit(1+rng.Intn(3), 6+rng.Intn(10))
		check("arrival")
	}
	// Two leave.
	depart()
	depart()
	check("departure")
	// Mid-run: a quarter of the pool fails.
	if err := f.FailProcs(10); err != nil {
		t.Fatal(err)
	}
	mutations++
	check("processor failure")
	// Afternoon: more arrivals on the degraded pool, some pushy.
	for i := 0; i < 6; i++ {
		admit(1+rng.Intn(5), 6+rng.Intn(10))
		check("degraded arrival")
	}
	depart()
	check("final departure")

	st := f.Stats()
	if st.Admitted != gtAdmitted || st.Rejected != gtRejected || st.Departed != gtDeparted {
		t.Fatalf("counters diverge from ground truth: fleet %+v, test admitted=%d rejected=%d departed=%d",
			st, gtAdmitted, gtRejected, gtDeparted)
	}
	if st.FailedProcs != 10 || st.PoolProcs != 30 {
		t.Fatalf("pool = %d failed = %d, want 30/10", st.PoolProcs, st.FailedProcs)
	}
	// Every successful mutation rebalances once; a preempting rejection may
	// add up to two more. The count must be bounded — no rebalance storms.
	if st.Rebalances < mutations || st.Rebalances > mutations+2*gtRejected {
		t.Fatalf("rebalances = %d, want within [%d, %d]", st.Rebalances, mutations, mutations+2*gtRejected)
	}
	if st.LastRebalanceMS != 1.0 {
		t.Fatalf("virtual-clock rebalance latency = %vms, want exactly 1ms", st.LastRebalanceMS)
	}

	// /fleet state must agree with the stats snapshot.
	state := f.State()
	if state.Generation != st.Generation || len(state.Pipelines) != st.Placed {
		t.Fatalf("state (gen %d, %d pipelines) disagrees with stats (gen %d, %d placed)",
			state.Generation, len(state.Pipelines), st.Generation, st.Placed)
	}

	// And the Prometheus exposition must agree with both.
	var buf strings.Builder
	if err := live.WriteProm(&buf, nil, reg, nil); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	samples := promFleetSamples(t, buf.String())
	want := map[string]float64{
		"fleet_admitted_total":    float64(st.Admitted),
		"fleet_rejected_total":    float64(st.Rejected),
		"fleet_departed_total":    float64(st.Departed),
		"fleet_evicted_total":     float64(st.Evicted),
		"fleet_rebalance_total":   float64(st.Rebalances),
		"fleet_pipelines_placed":  float64(st.Placed),
		"fleet_pool_procs":        float64(st.PoolProcs),
		"fleet_pool_failed_procs": float64(st.FailedProcs),
		"fleet_pool_used_procs":   float64(st.UsedProcs),
		"fleet_generation":        float64(st.Generation),
	}
	for name, w := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("exposition is missing %s", name)
			continue
		}
		if got != w {
			t.Errorf("%s = %v, exposition disagrees with ground truth %v", name, got, w)
		}
	}
	if hr, ok := samples["fleet_cache_hit_rate"]; !ok {
		t.Error("exposition is missing fleet_cache_hit_rate")
	} else if math.Abs(hr-st.Cache.HitRate) > 1e-9 {
		t.Errorf("fleet_cache_hit_rate = %v, stats say %v", hr, st.Cache.HitRate)
	}
	if _, ok := samples["fleet_rebalance_ms_count"]; !ok {
		t.Error("exposition is missing the fleet_rebalance_ms summary")
	}
}
