package fleet

import (
	"sync"

	"pipemap/internal/adapt"
	"pipemap/internal/core"
	"pipemap/internal/dp"
	"pipemap/internal/machine"
	"pipemap/internal/model"
)

// familyCap bounds the number of retained per-structure solve caches; a
// fleet serves many tenants but few distinct spec structures, so the
// oldest family is evicted FIFO when the bound is hit.
const familyCap = 256

// gridMemoCap bounds the machine-constrained solve memo.
const gridMemoCap = 256

// Cache is the fleet-level solve-once-place-many layer. It groups specs
// into structural families keyed by adapt.CanonicalStructSig and delegates
// each family to its own adapt.SolveCache, so two tenants alternating
// structurally different specs never thrash one cache's invalidation path,
// while N tenants submitting the identical spec share one memo entry and
// one retained incremental solver. Machine-constrained (grid) solves,
// which the SolveCache cannot express, are memoized separately keyed by
// (canonical spec key, region dims).
//
// A Cache is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	families map[uint64]*adapt.SolveCache
	order    []uint64

	gridMemo  map[gridKey]gridEntry
	gridOrder []gridKey
	gridHits  int64
	gridMiss  int64
	gridSolve int64
}

type gridKey struct {
	spec       uint64
	rows, cols int
}

type gridEntry struct {
	modules    []model.Module
	throughput float64
	latency    float64
}

// NewCache returns an empty fleet solve cache.
func NewCache() *Cache {
	return &Cache{
		families: map[uint64]*adapt.SolveCache{},
		gridMemo: map[gridKey]gridEntry{},
	}
}

// CacheStats aggregates hit/miss/solve counters across every family plus
// the grid memo.
type CacheStats struct {
	// Families is the number of retained structural families.
	Families int `json:"families"`
	// Hits, Misses and Invalidations sum the family memo counters and the
	// grid memo lookups.
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	// FullSolves and IncrementalSolves split the misses by solve path.
	FullSolves        int64 `json:"fullSolves"`
	IncrementalSolves int64 `json:"incrementalSolves"`
	// HitRate is Hits/(Hits+Misses), 0 before any lookup.
	HitRate float64 `json:"hitRate"`
}

// Stats snapshots the aggregated cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	fams := make([]*adapt.SolveCache, 0, len(c.families))
	for _, f := range c.families {
		fams = append(fams, f)
	}
	st := CacheStats{
		Families:   len(c.families),
		Hits:       c.gridHits,
		Misses:     c.gridMiss,
		FullSolves: c.gridSolve,
	}
	c.mu.Unlock()
	// Family stats are snapshotted outside the cache lock: each SolveCache
	// serializes internally, and Solve never holds c.mu across a solve.
	for _, f := range fams {
		fs := f.Stats()
		st.Hits += fs.Hits
		st.Misses += fs.Misses
		st.Invalidations += fs.Invalidations
		st.FullSolves += fs.FullSolves
		st.IncrementalSolves += fs.IncrementalSolves
	}
	if st.Hits+st.Misses > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return st
}

// family returns the SolveCache for a structural signature, creating it
// (and evicting the oldest family beyond the cap) as needed.
func (c *Cache) family(sig uint64) *adapt.SolveCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.families[sig]
	if f == nil {
		if len(c.order) >= familyCap {
			delete(c.families, c.order[0])
			c.order = c.order[:copy(c.order, c.order[1:])]
		}
		f = adapt.NewSolveCache()
		c.families[sig] = f
		c.order = append(c.order, sig)
	}
	return f
}

// Solve maps a chain onto an allocation-sized platform through the cache:
// a hit returns the memoized mapping without touching a solver, a miss
// routes through the family's incremental-DP warm path and memoizes the
// result. The returned path is one of adapt.PathMemo, PathIncremental,
// PathFullDP or PathGreedy, and the mapping is always a detached copy.
func (c *Cache) Solve(chain *model.Chain, pl model.Platform, opt adapt.ResolveOptions) (core.Result, string, error) {
	fam := c.family(adapt.CanonicalStructSig(chain, pl, opt))
	res, _, path, err := fam.Resolve(chain, pl, opt)
	return res, path, err
}

// PathGrid marks a placement solved under machine (grid) constraints.
const PathGrid = "grid"

// PathGridMemo marks a machine-constrained placement served from the grid
// memo without solving.
const PathGridMemo = "grid-memo"

// SolveGrid is the machine-constrained companion of Solve, used when a
// pipeline's unconstrained optimum does not pack into its grid region: it
// finds the best mapping feasible on the region (machine.FeasibleOptimal)
// and memoizes it by (canonical spec key, region dims).
func (c *Cache) SolveGrid(chain *model.Chain, pl model.Platform, opt adapt.ResolveOptions, g machine.Grid) (core.Result, string, error) {
	key := gridKey{spec: adapt.CanonicalSpecKey(chain, pl, opt), rows: g.Rows, cols: g.Cols}
	c.mu.Lock()
	if ent, ok := c.gridMemo[key]; ok {
		c.gridHits++
		c.mu.Unlock()
		m := model.Mapping{Chain: chain, Modules: append([]model.Module(nil), ent.modules...)}
		return core.Result{
			Mapping: m, Algorithm: core.DP,
			Throughput: ent.throughput, Latency: ent.latency, Unconstrained: m,
		}, PathGridMemo, nil
	}
	c.gridMiss++
	c.mu.Unlock()

	m, _, err := machine.FeasibleOptimal(chain, pl, machine.Constraints{Grid: g}, dp.Options{
		DisableReplication: opt.DisableReplication,
		DisableClustering:  opt.DisableClustering,
	})
	if err != nil {
		return core.Result{}, PathGrid, err
	}
	m.Modules = append([]model.Module(nil), m.Modules...)

	c.mu.Lock()
	c.gridSolve++
	if _, ok := c.gridMemo[key]; !ok {
		if len(c.gridOrder) >= gridMemoCap {
			delete(c.gridMemo, c.gridOrder[0])
			c.gridOrder = c.gridOrder[:copy(c.gridOrder, c.gridOrder[1:])]
		}
		c.gridMemo[key] = gridEntry{
			modules:    append([]model.Module(nil), m.Modules...),
			throughput: m.Throughput(),
			latency:    m.Latency(),
		}
		c.gridOrder = append(c.gridOrder, key)
	}
	c.mu.Unlock()
	return core.Result{
		Mapping: m, Algorithm: core.DP,
		Throughput: m.Throughput(), Latency: m.Latency(), Unconstrained: m,
	}, PathGrid, nil
}
