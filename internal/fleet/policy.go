package fleet

import (
	"fmt"
	"sort"

	"pipemap/internal/machine"
	"pipemap/internal/model"
)

// minAllocProcs returns the minimum pool share a chain needs to be
// mappable at all: the sum of the singleton modules' minimum processor
// counts. A mapping placing every task in its own module with exactly its
// minimum is valid at this budget, so the bound is sufficient (the DP may
// of course do better by clustering).
func minAllocProcs(c *model.Chain, memPerProc float64) (int, error) {
	total := 0
	for i := 0; i < c.Len(); i++ {
		m := c.ModuleMinProcs(i, i+1, memPerProc)
		if m < 0 {
			return 0, fmt.Errorf("fleet: task %d (%s) cannot fit in memory at any processor count",
				i, c.Tasks[i].Name)
		}
		total += m
	}
	return total, nil
}

// rectCeil returns the smallest q >= p that can form a rectangle on g, or
// -1 if none exists up to the grid size.
func rectCeil(g machine.Grid, p int) int {
	for q := p; q <= g.Procs(); q++ {
		if g.CanFormRect(q) {
			return q
		}
	}
	return -1
}

// rectFloor returns the largest q in [min, p] that can form a rectangle on
// g, or -1 if none exists. Callers ensure min itself is rectangle-formable
// (rectCeil at admission), so the search cannot come up empty in practice.
func rectFloor(g machine.Grid, p, min int) int {
	for q := p; q >= min; q-- {
		if g.CanFormRect(q) {
			return q
		}
	}
	return -1
}

// rank orders pipelines by the documented keep-priority: descending
// priority, then ascending minimum allocation, then admission order.
// Eviction victims are chosen from the tail of this order — the
// lowest-priority pipelines, largest minimum first, newest first among
// equals.
func rank(members []*pipeline) []*pipeline {
	ranked := append([]*pipeline(nil), members...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if a.min != b.min {
			return a.min < b.min
		}
		return a.id < b.id
	})
	return ranked
}

// partition scans the ranked pipelines reserving each minimum while it
// fits in procs; the remainder are victims.
func partition(ranked []*pipeline, procs int) (survivors, victims []*pipeline) {
	rem := procs
	for _, m := range ranked {
		if m.min <= rem {
			survivors = append(survivors, m)
			rem -= m.min
		} else {
			victims = append(victims, m)
		}
	}
	return survivors, victims
}

// distribute assigns each survivor its allocation: the minimum plus a
// priority-proportional share of the surplus (largest-remainder rounding),
// capped per spec. The sum of allocations never exceeds procs.
func distribute(survivors []*pipeline, procs int) {
	surplus := procs
	for _, m := range survivors {
		m.alloc = m.min
		surplus -= m.min
	}
	type share struct {
		m    *pipeline
		frac float64
	}
	for surplus > 0 {
		var open []*pipeline
		weight := 0
		for _, m := range survivors {
			if m.alloc < m.cap {
				open = append(open, m)
				weight += m.priority
			}
		}
		if len(open) == 0 || weight == 0 {
			break
		}
		shares := make([]share, len(open))
		given := 0
		for i, m := range open {
			exact := float64(surplus) * float64(m.priority) / float64(weight)
			g := int(exact)
			if head := m.cap - m.alloc; g > head {
				g = head
			}
			m.alloc += g
			given += g
			shares[i] = share{m: m, frac: exact - float64(int(exact))}
		}
		surplus -= given
		if given == 0 {
			// Every proportional share floored to zero (or was capped):
			// hand out single processors in remainder order so the round
			// always progresses.
			sort.SliceStable(shares, func(i, j int) bool { return shares[i].frac > shares[j].frac })
			for _, s := range shares {
				if surplus == 0 {
					break
				}
				if s.m.alloc < s.m.cap {
					s.m.alloc++
					surplus--
				}
			}
			// If nothing could be handed out, everyone is at cap.
			allCapped := true
			for _, m := range open {
				if m.alloc < m.cap {
					allCapped = false
					break
				}
			}
			if allCapped {
				break
			}
		}
	}
}
