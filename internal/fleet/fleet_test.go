package fleet

import (
	"strings"
	"testing"

	"pipemap/internal/adapt"
	"pipemap/internal/machine"
	"pipemap/internal/model"
)

// TestSolveOncePlaceMany is the headline acceptance test: N tenants
// admitting value-identical specs (distinct *Chain allocations) at equal
// allocations trigger exactly one full DP solve; every later placement is
// served from the memo, and all placements share one canonical key and one
// mapping.
func TestSolveOncePlaceMany(t *testing.T) {
	f, err := New(Config{Pool: model.Platform{Procs: 64}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	var first Placement
	for i := 0; i < n; i++ {
		p, err := f.Admit(Spec{Tenant: "tenant", Chain: fixedChain(), MaxProcs: 16})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if p.Alloc != 16 {
			t.Fatalf("admit %d: alloc %d, want the 16-processor cap", i, p.Alloc)
		}
		if i == 0 {
			first = p
		} else if p.Key != first.Key {
			t.Fatalf("admit %d: key %#x, want %#x (identical specs must share the canonical key)", i, p.Key, first.Key)
		}
	}
	cs := f.Cache().Stats()
	if cs.FullSolves != 1 {
		t.Fatalf("full solves = %d, want exactly 1 for %d identical specs", cs.FullSolves, n)
	}
	if cs.IncrementalSolves != 0 {
		t.Fatalf("incremental solves = %d, want 0", cs.IncrementalSolves)
	}
	if cs.Families != 1 {
		t.Fatalf("cache families = %d, want 1", cs.Families)
	}
	if cs.HitRate <= 0 {
		t.Fatalf("cache hit rate = %v, want > 0 after repeat admissions", cs.HitRate)
	}
	ps := f.Placements()
	for _, p := range ps[1:] {
		if p.Path != adapt.PathMemo {
			t.Errorf("pipeline %d placed via %q, want %q", p.ID, p.Path, adapt.PathMemo)
		}
		if p.Summary != ps[0].Summary {
			t.Errorf("pipeline %d mapping %q != first %q (cache hit must be bit-identical)", p.ID, p.Summary, ps[0].Summary)
		}
	}
	if err := checkPlacements(f, machine.Grid{}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionPolicy checks the documented victim order: admitting a
// high-priority spec that cannot coexist with a low-priority incumbent
// evicts the incumbent (lowest priority loses), and the accounting
// invariant holds through the preemption.
func TestEvictionPolicy(t *testing.T) {
	f, err := New(Config{Pool: model.Platform{Procs: 8}})
	if err != nil {
		t.Fatal(err)
	}
	big := fixedChain()
	for i := range big.Tasks {
		big.Tasks[i].MinProcs = 2 // min 6 of 8: two cannot coexist
	}
	low, err := f.Admit(Spec{Tenant: "low", Chain: big, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	big2 := fixedChain()
	for i := range big2.Tasks {
		big2.Tasks[i].MinProcs = 2
	}
	high, err := f.Admit(Spec{Tenant: "high", Chain: big2, Priority: 5})
	if err != nil {
		t.Fatalf("high-priority admission should preempt, got %v", err)
	}
	ps := f.Placements()
	if len(ps) != 1 || ps[0].ID != high.ID {
		t.Fatalf("placements = %+v, want only the high-priority pipeline %d", ps, high.ID)
	}
	st := f.Stats()
	if st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (pipeline %d)", st.Evicted, low.ID)
	}
	if err := checkAccounting(st); err != nil {
		t.Fatal(err)
	}

	// The mirror case: a low-priority newcomer against a high-priority
	// incumbent is rejected with the fleet unchanged.
	big3 := fixedChain()
	for i := range big3.Tasks {
		big3.Tasks[i].MinProcs = 2
	}
	if _, err := f.Admit(Spec{Tenant: "later-low", Chain: big3, Priority: 1}); err == nil {
		t.Fatal("low-priority admission against a full pool should be rejected")
	}
	st = f.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if got := f.Placements(); len(got) != 1 || got[0].ID != high.ID {
		t.Fatalf("rejection must leave the fleet unchanged, got %+v", got)
	}
	if err := checkAccounting(st); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitRejections covers the cheap rejection paths: nil chain,
// infeasible memory, impossible minimum, and the MaxPipelines bound.
func TestAdmitRejections(t *testing.T) {
	f, err := New(Config{Pool: model.Platform{Procs: 4}, MaxPipelines: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(Spec{Tenant: "nil"}); err == nil {
		t.Fatal("nil chain must be rejected")
	}
	c := fixedChain()
	c.Tasks[1].MinProcs = 9
	if _, err := f.Admit(Spec{Tenant: "toobig", Chain: c}); err == nil {
		t.Fatal("minimum above the pool must be rejected")
	}
	if _, err := f.Admit(Spec{Tenant: "ok", Chain: fixedChain()}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(Spec{Tenant: "overflow", Chain: fixedChain()}); err == nil {
		t.Fatal("MaxPipelines must bound admissions")
	} else if !strings.Contains(err.Error(), "max 1") {
		t.Fatalf("unexpected error: %v", err)
	}
	st := f.Stats()
	if st.Admitted != 1 || st.Placed != 1 {
		t.Fatalf("stats = %+v, want 1 admitted, 1 placed", st)
	}
	if err := checkAccounting(st); err != nil {
		t.Fatal(err)
	}
}

// TestDepartGrowsSurvivors checks that a departure returns its share to
// the pool and the survivors' allocations grow back on rebalance.
func TestDepartGrowsSurvivors(t *testing.T) {
	f, err := New(Config{Pool: model.Platform{Procs: 32}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Admit(Spec{Tenant: "a", Chain: fixedChain()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Admit(Spec{Tenant: "b", Chain: fixedChain()})
	if err != nil {
		t.Fatal(err)
	}
	halved := f.Placements()
	if len(halved) != 2 || halved[0].Alloc != 16 || halved[1].Alloc != 16 {
		t.Fatalf("placements = %+v, want two 16-processor shares", halved)
	}
	if err := f.Depart(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.Depart(a.ID); err == nil {
		t.Fatal("double depart must fail")
	}
	ps := f.Placements()
	if len(ps) != 1 || ps[0].ID != b.ID || ps[0].Alloc != 32 {
		t.Fatalf("placements after depart = %+v, want pipeline %d at 32 processors", ps, b.ID)
	}
	st := f.Stats()
	if st.Departed != 1 {
		t.Fatalf("departed = %d, want 1", st.Departed)
	}
	if err := checkAccounting(st); err != nil {
		t.Fatal(err)
	}
	if err := checkPlacements(f, machine.Grid{}); err != nil {
		t.Fatal(err)
	}
}

// TestFailAndRestoreProcs checks the failure path: allocations shrink
// feasibly on failure, the generation bumps, and restore grows them back.
func TestFailAndRestoreProcs(t *testing.T) {
	f, err := New(Config{Pool: model.Platform{Procs: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(Spec{Tenant: "a", Chain: fixedChain()}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(Spec{Tenant: "b", Chain: fixedChain()}); err != nil {
		t.Fatal(err)
	}
	gen := f.Generation()
	if err := f.FailProcs(16); err != nil {
		t.Fatal(err)
	}
	if f.Generation() <= gen {
		t.Fatalf("generation %d did not bump past %d on failure", f.Generation(), gen)
	}
	st := f.Stats()
	if st.PoolProcs != 16 || st.FailedProcs != 16 {
		t.Fatalf("pool = %d failed = %d, want 16/16", st.PoolProcs, st.FailedProcs)
	}
	if err := checkPlacements(f, machine.Grid{}); err != nil {
		t.Fatal(err)
	}
	if err := f.FailProcs(16); err == nil {
		t.Fatal("failing the whole pool must be refused")
	}
	if err := f.RestoreProcs(17); err == nil {
		t.Fatal("restoring more than failed must be refused")
	}
	if err := f.RestoreProcs(16); err != nil {
		t.Fatal(err)
	}
	ps := f.Placements()
	if len(ps) != 2 || ps[0].Alloc+ps[1].Alloc != 32 {
		t.Fatalf("placements after restore = %+v, want the full 32 shared", ps)
	}
	if err := checkAccounting(f.Stats()); err != nil {
		t.Fatal(err)
	}
}

// TestGridModePlacements checks grid mode end to end: disjoint rectangular
// regions, machine-feasible mappings inside each region, and feasible
// re-packing after a processor failure.
func TestGridModePlacements(t *testing.T) {
	g := machine.Grid{Rows: 8, Cols: 8}
	f, err := New(Config{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"a", "b", "c"} {
		if _, err := f.Admit(Spec{Tenant: tenant, Chain: fixedChain(), MaxProcs: 16}); err != nil {
			t.Fatalf("admit %s: %v", tenant, err)
		}
	}
	if err := checkPlacements(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.FailProcs(32); err != nil {
		t.Fatal(err)
	}
	if err := checkPlacements(f, g); err != nil {
		t.Fatalf("after failure: %v", err)
	}
	if err := checkAccounting(f.Stats()); err != nil {
		t.Fatal(err)
	}
}
