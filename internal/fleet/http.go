package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// StateHandler serves the fleet state as JSON on GET. Mount it at /fleet
// via live.ServerOptions.Extra.
func StateHandler(f *Fleet) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.State())
	})
}

// FailHandler injects processor failures on POST (?n=N, default 1) and
// returns the post-rebalance state as JSON. onRebalance, when non-nil, runs
// after the rebalance completes (the command layer uses it to swap live
// ingest planes onto the new mappings) and before the response is written,
// so a caller observing the response sees the fully reconciled fleet.
func FailHandler(f *Fleet, onRebalance func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n := 1
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		if err := f.FailProcs(n); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if onRebalance != nil {
			onRebalance()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.State())
	})
}
