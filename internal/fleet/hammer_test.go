package fleet

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// TestHammerConcurrentChurn is the -race battery: many goroutines admit,
// depart, inject processor failures/restores, and read state concurrently.
// At quiesce the accounting invariant admitted == placed + departed +
// evicted must hold exactly, every surviving placement must be
// machine-feasible, and no goroutines may leak.
func TestHammerConcurrentChurn(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	reg := live.NewRegistry(live.Options{})
	f, err := New(Config{Pool: model.Platform{Procs: 48}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	const (
		admitters = 4
		departers = 2
		chaos     = 2
		readers   = 2
		perWorker = 30
	)
	var (
		wg       sync.WaitGroup
		idMu     sync.Mutex
		ids      []int64
		departed int64 // departures this test performed successfully
	)
	popID := func(rng *rand.Rand) (int64, bool) {
		idMu.Lock()
		defer idMu.Unlock()
		if len(ids) == 0 {
			return 0, false
		}
		i := rng.Intn(len(ids))
		id := ids[i]
		ids = append(ids[:i], ids[i+1:]...)
		return id, true
	}

	for w := 0; w < admitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				s := Spec{
					Tenant:   "hammer",
					Chain:    genChain(rng, 2+rng.Intn(3)),
					Priority: 1 + rng.Intn(3),
					MaxProcs: 4 + rng.Intn(12),
				}
				if p, err := f.Admit(s); err == nil {
					idMu.Lock()
					ids = append(ids, p.ID)
					idMu.Unlock()
				}
			}
		}(w)
	}
	for w := 0; w < departers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < perWorker; i++ {
				if id, ok := popID(rng); ok {
					if err := f.Depart(id); err == nil {
						atomic.AddInt64(&departed, 1)
					}
				}
				time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
			}
		}(w)
	}
	for w := 0; w < chaos; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 200))
			for i := 0; i < perWorker; i++ {
				if rng.Intn(2) == 0 {
					_ = f.FailProcs(1 + rng.Intn(3))
				} else {
					_ = f.RestoreProcs(1 + rng.Intn(3))
				}
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker*2; i++ {
				st := f.Stats()
				if st.UsedProcs > st.PoolProcs {
					t.Errorf("reader saw over-allocation: used %d > pool %d", st.UsedProcs, st.PoolProcs)
					return
				}
				for _, p := range f.Placements() {
					// Snapshots must be detached: scribbling on them is
					// invisible to the fleet (the race detector enforces
					// it found no sharing).
					p.Mapping.Modules = append(p.Mapping.Modules, model.Module{})
				}
				_ = f.State()
				_ = f.Cache().Stats()
			}
		}(w)
	}
	wg.Wait()

	st := f.Stats()
	if err := checkAccounting(st); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&departed); st.Departed != got {
		t.Fatalf("fleet counted %d departures, test performed %d", st.Departed, got)
	}
	if st.Admitted == 0 {
		t.Fatal("hammer admitted nothing; the test exercised no interesting schedule")
	}
	if err := checkPlacements(f, machine.Grid{}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestHammerConcurrentCacheSolves races many goroutines through one Cache
// on a mix of identical and distinct specs: results must stay detached and
// the counters coherent (hits+misses == lookups).
func TestHammerConcurrentCacheSolves(t *testing.T) {
	cache := NewCache()
	shared := fixedChain()
	pl := model.Platform{Procs: 16}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	var lookups int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < iters; i++ {
				chain := shared
				if rng.Intn(2) == 0 {
					chain = genChain(rng, 2+rng.Intn(3))
				}
				res, _, err := cache.Solve(chain, pl, adaptOptions())
				atomic.AddInt64(&lookups, 1)
				if err != nil {
					continue
				}
				if len(res.Mapping.Modules) > 0 {
					res.Mapping.Modules[0].Procs = -99 // must not poison the memo
				}
			}
		}(w)
	}
	wg.Wait()

	res, _, err := cache.Solve(shared, pl, adaptOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Mapping.Modules {
		if m.Procs < 0 {
			t.Fatal("memo poisoned by concurrent caller mutation")
		}
	}
	cs := cache.Stats()
	if cs.Hits+cs.Misses != atomic.LoadInt64(&lookups)+1 {
		t.Fatalf("cache counters incoherent: %d hits + %d misses != %d lookups",
			cs.Hits, cs.Misses, lookups+1)
	}
}
