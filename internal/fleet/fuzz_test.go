package fleet

import (
	"math/rand"
	"reflect"
	"testing"

	"pipemap/internal/adapt"
	"pipemap/internal/model"
)

// FuzzFleetCacheMatchesFresh is the differential fuzz target: for a random
// spec and pool slice, a fleet-cache hit must return a placement
// bit-identical to a fresh, uncached adapt.Resolve of the same spec on the
// same slice — same modules, same predicted throughput and latency. A
// divergence means the canonical key is collapsing specs it must not, or
// the memo is returning stale state.
func FuzzFleetCacheMatchesFresh(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1995} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		chain := genChain(rng, 2+rng.Intn(5))
		pl := model.Platform{Procs: 4 + rng.Intn(29)}
		var opt adapt.ResolveOptions

		cache := NewCache()
		first, firstPath, err := cache.Solve(chain, pl, opt)
		fresh, _, freshErr := adapt.Resolve(chain, pl, opt)
		if (err != nil) != (freshErr != nil) {
			t.Fatalf("seed %d: cached error %v vs fresh error %v", seed, err, freshErr)
		}
		if err != nil {
			return
		}
		if firstPath == adapt.PathMemo {
			t.Fatalf("seed %d: first solve through an empty cache reported a memo hit", seed)
		}

		hit, hitPath, err := cache.Solve(chain, pl, opt)
		if err != nil {
			t.Fatalf("seed %d: cache-hit solve: %v", seed, err)
		}
		if hitPath != adapt.PathMemo {
			t.Fatalf("seed %d: second identical solve took path %q, want %q", seed, hitPath, adapt.PathMemo)
		}

		for name, got := range map[string]*model.Mapping{"first": &first.Mapping, "hit": &hit.Mapping} {
			if !reflect.DeepEqual(got.Modules, fresh.Mapping.Modules) {
				t.Fatalf("seed %d: %s placement diverges from fresh solve:\n cached: %v\n fresh:  %v",
					seed, name, got, &fresh.Mapping)
			}
		}
		if hit.Throughput != fresh.Throughput || hit.Latency != fresh.Latency {
			t.Fatalf("seed %d: cache hit metrics (%v, %v) != fresh (%v, %v)",
				seed, hit.Throughput, hit.Latency, fresh.Throughput, fresh.Latency)
		}

		// The hit's modules must be a detached copy: mutating them must not
		// poison the memo for the next tenant.
		if len(hit.Mapping.Modules) > 0 {
			hit.Mapping.Modules[0].Procs = -1
			again, _, err := cache.Solve(chain, pl, opt)
			if err != nil {
				t.Fatalf("seed %d: post-mutation solve: %v", seed, err)
			}
			if !reflect.DeepEqual(again.Mapping.Modules, fresh.Mapping.Modules) {
				t.Fatalf("seed %d: memo poisoned by caller mutation", seed)
			}
		}
	})
}
