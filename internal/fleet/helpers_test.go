package fleet

import (
	"fmt"
	"math/rand"

	"pipemap/internal/adapt"
	"pipemap/internal/machine"
	"pipemap/internal/model"
)

// adaptOptions returns the default solver knobs used across the battery.
func adaptOptions() adapt.ResolveOptions { return adapt.ResolveOptions{} }

// genChain builds a random but deterministic (per rng) chain of k tasks
// with polynomial cost models, a mix of replicable and pinned tasks, and
// occasional explicit MinProcs constraints.
func genChain(rng *rand.Rand, k int) *model.Chain {
	c := &model.Chain{
		Tasks: make([]model.Task, k),
		ICom:  make([]model.CostFunc, k-1),
		ECom:  make([]model.CommFunc, k-1),
	}
	for i := 0; i < k; i++ {
		c.Tasks[i] = model.Task{
			Name:       fmt.Sprintf("t%d", i),
			Exec:       model.PolyExec{C1: rng.Float64() * 0.01, C2: 0.5 + rng.Float64()*4, C3: rng.Float64() * 1e-4},
			Replicable: rng.Intn(3) != 0,
		}
		if rng.Intn(4) == 0 {
			c.Tasks[i].MinProcs = 1 + rng.Intn(3)
		}
	}
	for i := 0; i < k-1; i++ {
		c.ICom[i] = model.PolyExec{C2: rng.Float64() * 0.2}
		c.ECom[i] = model.PolyComm{C1: rng.Float64() * 0.01, C2: rng.Float64() * 0.1, C3: rng.Float64() * 0.1}
	}
	return c
}

// fixedChain builds a deterministic 3-task chain; two calls return
// distinct *Chain values with identical costs, so their canonical spec
// keys collide by construction (solve-once-place-many).
func fixedChain() *model.Chain {
	return &model.Chain{
		Tasks: []model.Task{
			{Name: "src", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "mid", Exec: model.PolyExec{C1: 0.02, C2: 9}, Replicable: true},
			{Name: "sink", Exec: model.PolyExec{C2: 2}, Replicable: true},
		},
		ICom: []model.CostFunc{model.PolyExec{C2: 0.3}, model.PolyExec{C2: 0.2}},
		ECom: []model.CommFunc{model.PolyComm{C1: 0.01}, model.PolyComm{C1: 0.01}},
	}
}

// lineGrid is the degenerate 1xN grid used to machine-check flat-pool
// placements: any module set packs iff total processors fit.
func lineGrid(procs int) machine.Grid {
	return machine.Grid{Rows: 1, Cols: procs}
}

// checkPlacements asserts the fleet's externally visible invariants from
// its own snapshots: allocations sum within the pool, every mapping is
// model-valid at its allocation and machine-feasible (directly via
// machine.Feasible, not scheduler bookkeeping), and in grid mode the
// regions are in-bounds, disjoint rectangles. It returns an error naming
// the first violation.
func checkPlacements(f *Fleet, grid machine.Grid) error {
	st := f.Stats()
	ps := f.Placements()
	if len(ps) != st.Placed {
		return fmt.Errorf("stats report %d placed, snapshot has %d", st.Placed, len(ps))
	}
	used := 0
	for _, p := range ps {
		used += p.Alloc
	}
	if used > st.PoolProcs {
		return fmt.Errorf("over-allocation: sum of allocations %d > pool %d", used, st.PoolProcs)
	}
	if used != st.UsedProcs {
		return fmt.Errorf("stats report %d used, placements sum to %d", st.UsedProcs, used)
	}
	gridMode := grid.Rows != 0
	occupied := map[[2]int]int64{}
	for _, p := range ps {
		pl := model.Platform{Procs: p.Alloc}
		m := p.Mapping
		if err := m.Validate(pl); err != nil {
			return fmt.Errorf("pipeline %d (%s): invalid mapping at alloc %d: %v", p.ID, p.Tenant, p.Alloc, err)
		}
		if !gridMode {
			if _, ok := machine.Feasible(m, machine.Constraints{Grid: lineGrid(p.Alloc)}); !ok {
				return fmt.Errorf("pipeline %d (%s): mapping not machine-feasible in %d processors", p.ID, p.Tenant, p.Alloc)
			}
			continue
		}
		r := p.Region
		if r.H < 1 || r.W < 1 || r.Row < 0 || r.Col < 0 ||
			r.Row+r.H > grid.Rows || r.Col+r.W > grid.Cols {
			return fmt.Errorf("pipeline %d (%s): region %+v outside %dx%d grid", p.ID, p.Tenant, r, grid.Rows, grid.Cols)
		}
		if r.H*r.W != p.Alloc {
			return fmt.Errorf("pipeline %d (%s): region %+v area != alloc %d", p.ID, p.Tenant, r, p.Alloc)
		}
		for row := r.Row; row < r.Row+r.H; row++ {
			for col := r.Col; col < r.Col+r.W; col++ {
				if prev, taken := occupied[[2]int{row, col}]; taken {
					return fmt.Errorf("pipelines %d and %d overlap at cell (%d,%d)", prev, p.ID, row, col)
				}
				occupied[[2]int{row, col}] = p.ID
			}
		}
		if _, ok := machine.Feasible(m, machine.Constraints{Grid: machine.Grid{Rows: r.H, Cols: r.W}}); !ok {
			return fmt.Errorf("pipeline %d (%s): mapping not machine-feasible in its %dx%d region", p.ID, p.Tenant, r.H, r.W)
		}
	}
	return nil
}

// checkAccounting asserts the quiesce invariant
// admitted == placed + departed + evicted.
func checkAccounting(st Stats) error {
	if st.Admitted != int64(st.Placed)+st.Departed+st.Evicted {
		return fmt.Errorf("accounting: admitted %d != placed %d + departed %d + evicted %d",
			st.Admitted, st.Placed, st.Departed, st.Evicted)
	}
	return nil
}
