package fleet

import (
	"fmt"
	"sync"
	"time"

	"pipemap/internal/adapt"
	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// Spec is one tenant's admission request: a chain with cost models plus
// scheduling hints.
type Spec struct {
	// Tenant identifies the owner; informational (it never enters the
	// solve cache key).
	Tenant string
	// Chain is the task chain with cost models.
	Chain *model.Chain
	// Priority weights the pool share and the eviction order; higher keeps
	// longer and receives proportionally more surplus. Zero means 1.
	Priority int
	// MaxProcs caps the allocation (0 = no cap beyond the pool); specs
	// carry their own platform size here so a small chain never hoards a
	// large pool.
	MaxProcs int
}

// Config configures a fleet scheduler.
type Config struct {
	// Pool is the shared processor pool every pipeline is carved from.
	Pool model.Platform
	// Grid, when non-zero, adds geometric packing: allocations become
	// disjoint rectangles on the grid and every placed mapping must be
	// machine-feasible inside its region. Pool.Procs is clamped to the
	// grid size (and defaults to it when zero).
	Grid machine.Grid
	// Solve carries the solver knobs forwarded to every per-pipeline solve
	// (budget routing, replication/clustering switches).
	Solve adapt.ResolveOptions
	// MaxPipelines bounds concurrent admissions (0 = unbounded).
	MaxPipelines int
	// Registry receives fleet_* metrics; nil disables.
	Registry *live.Registry
	// Now injects a clock for tests; nil means time.Now.
	Now func() time.Time
}

// Placement is the externally visible state of one admitted pipeline.
type Placement struct {
	ID       int64  `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Key is the canonical spec hash at the current allocation — equal
	// keys mean the solver ran once for all of them.
	Key uint64 `json:"key"`
	// Alloc is the processor allocation; the mapping uses at most this.
	Alloc int `json:"alloc"`
	// Procs is what the mapping actually uses (<= Alloc).
	Procs int `json:"procs"`
	// Region is the grid rectangle in grid mode (zero otherwise).
	Region machine.Rect `json:"region,omitzero"`
	// Mapping is the placed mapping (a detached copy).
	Mapping model.Mapping `json:"-"`
	// Summary is the human-readable mapping.
	Summary    string  `json:"mapping"`
	Throughput float64 `json:"throughput"`
	Latency    float64 `json:"latency"`
	// Path reports how the last placement was produced: memo, incremental,
	// dp, greedy, grid, or grid-memo.
	Path string `json:"path"`
	// Generation is the rebalance generation that last (re-)placed this
	// pipeline.
	Generation int64 `json:"generation"`
}

// pipeline is the internal per-admission record.
type pipeline struct {
	id       int64
	tenant   string
	chain    *model.Chain
	priority int
	min      int // minimum feasible allocation (rectangle-formable in grid mode)
	cap      int // allocation ceiling
	alloc    int

	placed     bool
	key        uint64
	region     machine.Rect
	placedDims machine.Rect // region dims the current mapping was verified on
	mapping    model.Mapping
	throughput float64
	latency    float64
	path       string
	placedGen  int64
}

// Stats is a point-in-time snapshot of the fleet counters. At quiesce,
// Admitted == Placed + Departed + Evicted.
type Stats struct {
	Generation  int64   `json:"generation"`
	PoolProcs   int     `json:"poolProcs"`
	FailedProcs int     `json:"failedProcs"`
	UsedProcs   int     `json:"usedProcs"`
	Utilization float64 `json:"utilization"`
	Placed      int     `json:"placed"`
	Admitted    int64   `json:"admitted"`
	Rejected    int64   `json:"rejected"`
	Departed    int64   `json:"departed"`
	Evicted     int64   `json:"evicted"`
	Rebalances  int64   `json:"rebalances"`
	// LastRebalanceMS is the wall-clock latency of the last rebalance.
	LastRebalanceMS float64    `json:"lastRebalanceMs"`
	Cache           CacheStats `json:"cache"`
}

// State is the /fleet JSON payload: stats plus per-pipeline placements.
type State struct {
	Stats
	Pipelines []Placement `json:"pipelines"`
}

// Fleet is the multi-pipeline scheduler. All methods are safe for
// concurrent use.
type Fleet struct {
	mu  sync.Mutex
	cfg Config

	grid  bool
	procs int // surviving pool size
	fail  int // processors failed so far

	nextID  int64
	members []*pipeline // admission order

	cache *Cache

	gen        int64
	admitted   int64
	rejected   int64
	departed   int64
	evicted    int64
	rebalances int64
	lastRebal  time.Duration

	lastCacheHits, lastCacheMiss int64 // for delta metric publication

	cAdmit, cReject, cDepart, cEvict, cRebal *live.Counter
	cCacheHit, cCacheMiss                    *live.Counter
	gPlaced, gPool, gFailed, gUsed, gUtil    *live.Gauge
	gGen, gHitRate                           *live.Gauge
	hRebal                                   *live.Histogram
}

// New builds an empty fleet over the configured pool.
func New(cfg Config) (*Fleet, error) {
	f := &Fleet{cfg: cfg, cache: NewCache()}
	if cfg.Grid.Rows != 0 || cfg.Grid.Cols != 0 {
		if err := cfg.Grid.Validate(); err != nil {
			return nil, err
		}
		f.grid = true
		if cfg.Pool.Procs == 0 || cfg.Pool.Procs > cfg.Grid.Procs() {
			f.cfg.Pool.Procs = cfg.Grid.Procs()
		}
	}
	if err := f.cfg.Pool.Validate(); err != nil {
		return nil, err
	}
	f.procs = f.cfg.Pool.Procs
	if reg := cfg.Registry; reg != nil {
		f.cAdmit = reg.Counter("fleet.admitted")
		f.cReject = reg.Counter("fleet.rejected")
		f.cDepart = reg.Counter("fleet.departed")
		f.cEvict = reg.Counter("fleet.evicted")
		f.cRebal = reg.Counter("fleet.rebalance")
		f.cCacheHit = reg.Counter("fleet.cache_hits")
		f.cCacheMiss = reg.Counter("fleet.cache_misses")
		f.gPlaced = reg.Gauge("fleet.pipelines_placed")
		f.gPool = reg.Gauge("fleet.pool_procs")
		f.gFailed = reg.Gauge("fleet.pool_failed_procs")
		f.gUsed = reg.Gauge("fleet.pool_used_procs")
		f.gUtil = reg.Gauge("fleet.pool_utilization")
		f.gGen = reg.Gauge("fleet.generation")
		f.gHitRate = reg.Gauge("fleet.cache_hit_rate")
	}
	if cfg.Registry != nil {
		f.hRebal = cfg.Registry.Histogram("fleet.rebalance_ms")
	}
	f.publishLocked()
	return f, nil
}

func (f *Fleet) now() time.Time {
	if f.cfg.Now != nil {
		return f.cfg.Now()
	}
	return time.Now()
}

// Cache exposes the solve cache for stats assertions.
func (f *Fleet) Cache() *Cache { return f.cache }

// Admit places a new pipeline, rebalancing the fleet around it. A spec
// that cannot fit — the pool lacks capacity even after evicting every
// lower-ranked pipeline — is rejected with no change to the fleet.
// Admission may preempt: lower-ranked pipelines are evicted when the
// newcomer outranks them and capacity requires it.
func (f *Fleet) Admit(s Spec) (Placement, error) {
	if s.Chain == nil {
		return Placement{}, fmt.Errorf("fleet: admit with nil chain")
	}
	if err := s.Chain.Validate(); err != nil {
		return Placement{}, err
	}
	pri := s.Priority
	if pri < 1 {
		pri = 1
	}

	f.mu.Lock()
	defer f.mu.Unlock()

	reject := func(format string, args ...any) (Placement, error) {
		f.rejected++
		f.cReject.Inc()
		f.publishLocked()
		return Placement{}, fmt.Errorf("fleet: "+format, args...)
	}

	if f.cfg.MaxPipelines > 0 && len(f.members) >= f.cfg.MaxPipelines {
		return reject("admit %q: %d pipelines already admitted (max %d)",
			s.Tenant, len(f.members), f.cfg.MaxPipelines)
	}
	min, err := minAllocProcs(s.Chain, f.cfg.Pool.MemPerProc)
	if err != nil {
		return reject("admit %q: %v", s.Tenant, err)
	}
	if f.grid {
		if min = rectCeil(f.cfg.Grid, min); min < 0 {
			return reject("admit %q: minimum allocation cannot form a rectangle on the %dx%d grid",
				s.Tenant, f.cfg.Grid.Rows, f.cfg.Grid.Cols)
		}
	}
	capProcs := f.cfg.Pool.Procs
	if s.MaxProcs > 0 && s.MaxProcs < capProcs {
		capProcs = s.MaxProcs
	}
	if min > capProcs {
		return reject("admit %q: needs at least %d processors, cap is %d", s.Tenant, min, capProcs)
	}
	if min > f.procs {
		return reject("admit %q: needs at least %d processors, %d survive in the pool",
			s.Tenant, min, f.procs)
	}

	f.nextID++
	cand := &pipeline{
		id: f.nextID, tenant: s.Tenant, chain: s.Chain,
		priority: pri, min: min, cap: capProcs,
	}
	// Mutation-free pre-check: run the partition with the candidate
	// included (rank and partition only read min/priority); if the
	// candidate itself is the policy victim, reject without disturbing
	// any allocation.
	trial := append(append([]*pipeline(nil), f.members...), cand)
	_, cut := partition(rank(trial), f.procs)
	for _, v := range cut {
		if v == cand {
			return reject("admit %q: pool exhausted (needs %d, pool %d with %d pipelines placed)",
				s.Tenant, min, f.procs, len(f.members))
		}
	}
	prev := f.members
	f.members = trial
	victims := f.rebalanceLocked()

	for _, v := range victims {
		if v == cand {
			// The candidate survived the partition but lost later (grid
			// packing shrank it away, or its solve failed): restore the
			// previous membership and rebalance again so the survivors'
			// allocations are recomputed without the candidate. That
			// restore rebalance cannot evict — the previous configuration
			// was feasible — so its victims are discarded.
			f.members = prev
			for range f.rebalanceLocked() {
				// The restore rebalance should never evict (the previous
				// configuration was feasible); account defensively so the
				// admitted == placed + departed + evicted invariant can
				// never drift.
				f.evicted++
				f.cEvict.Inc()
			}
			f.rejected++
			f.cReject.Inc()
			f.publishLocked()
			return Placement{}, fmt.Errorf("fleet: admit %q: does not fit (needs %d, pool %d with %d pipelines placed)",
				s.Tenant, min, f.procs, len(prev))
		}
	}
	f.admitted++
	f.cAdmit.Inc()
	for range victims {
		f.evicted++
		f.cEvict.Inc()
	}
	f.publishLocked()
	return cand.placement(), nil
}

// Depart removes a pipeline voluntarily and rebalances the survivors.
func (f *Fleet) Depart(id int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := -1
	for i, m := range f.members {
		if m.id == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("fleet: depart: no pipeline %d", id)
	}
	f.members = append(f.members[:idx:idx], f.members[idx+1:]...)
	f.departed++
	f.cDepart.Inc()
	victims := f.rebalanceLocked()
	for range victims {
		f.evicted++
		f.cEvict.Inc()
	}
	f.publishLocked()
	return nil
}

// FailProcs removes n processors from the pool (fail-stop) and rebalances:
// allocations shrink, victims chosen by the documented policy are evicted,
// and every surviving pipeline is re-placed feasibly on the smaller pool.
func (f *Fleet) FailProcs(n int) error {
	if n < 1 {
		return fmt.Errorf("fleet: fail %d processors, want >= 1", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n >= f.procs {
		return fmt.Errorf("fleet: failing %d of %d processors leaves none to serve from", n, f.procs)
	}
	f.procs -= n
	f.fail += n
	victims := f.rebalanceLocked()
	for range victims {
		f.evicted++
		f.cEvict.Inc()
	}
	f.publishLocked()
	return nil
}

// RestoreProcs returns n previously failed processors to the pool and
// rebalances (allocations grow back).
func (f *Fleet) RestoreProcs(n int) error {
	if n < 1 {
		return fmt.Errorf("fleet: restore %d processors, want >= 1", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > f.fail {
		return fmt.Errorf("fleet: restore %d processors, only %d failed", n, f.fail)
	}
	f.procs += n
	f.fail -= n
	victims := f.rebalanceLocked()
	for range victims {
		// Growing the pool cannot evict, but count defensively.
		f.evicted++
		f.cEvict.Inc()
	}
	f.publishLocked()
	return nil
}

// rebalanceLocked re-partitions the pool over f.members, re-places every
// pipeline whose allocation (or grid region shape) changed, removes and
// returns the victims (callers account them), and bumps the generation.
// Pipelines whose solve fails are treated as victims too, so the fleet
// never retains an unplaceable member.
func (f *Fleet) rebalanceLocked() []*pipeline {
	start := f.now()
	var victims []*pipeline

	survivors, cut := partition(rank(f.members), f.procs)
	victims = append(victims, cut...)
	distribute(survivors, f.procs)

	if f.grid {
		survivors, cut = f.packGridLocked(survivors)
		victims = append(victims, cut...)
	}

	// Re-place the pipelines whose allocation or region shape moved; the
	// rest keep their mapping without touching a solver.
	placed := survivors[:0]
	for _, m := range survivors {
		if err := f.placeLocked(m); err != nil {
			victims = append(victims, m)
			continue
		}
		placed = append(placed, m)
	}
	survivors = placed

	// Keep admission order in f.members.
	alive := make(map[*pipeline]bool, len(survivors))
	for _, m := range survivors {
		alive[m] = true
	}
	kept := f.members[:0]
	for _, m := range f.members {
		if alive[m] {
			kept = append(kept, m)
		}
	}
	f.members = kept

	f.gen++
	f.rebalances++
	f.cRebal.Inc()
	f.lastRebal = f.now().Sub(start)
	f.hRebal.Observe(float64(f.lastRebal) / float64(time.Millisecond))
	return victims
}

// packGridLocked rounds allocations to rectangle-formable counts and packs
// the per-pipeline regions onto the grid as disjoint rectangles via
// machine.Pack. When the regions do not pack, the largest allocation is
// shrunk to the next smaller rectangle-formable count; when every
// allocation is already at its minimum, the lowest-ranked survivor is
// evicted. The loop is bounded: every iteration removes at least one
// processor from the request or one pipeline from the set.
func (f *Fleet) packGridLocked(survivors []*pipeline) (kept, victims []*pipeline) {
	g := f.cfg.Grid
	for _, m := range survivors {
		if a := rectFloor(g, m.alloc, m.min); a > 0 {
			m.alloc = a
		} else {
			m.alloc = m.min // min is rectangle-formable by admission
		}
	}
	ranked := rank(survivors)
	for len(ranked) > 0 {
		mods := make([]model.Module, len(ranked))
		for i, m := range ranked {
			mods[i] = model.Module{Lo: i, Hi: i + 1, Procs: m.alloc, Replicas: 1}
		}
		layout, ok := machine.Pack(model.Mapping{Modules: mods}, g)
		if ok {
			for _, pi := range layout.Instances {
				ranked[pi.Module].region = pi.Rect
			}
			return ranked, victims
		}
		// Shrink the largest shrinkable allocation by one rectangle step.
		shrunk := false
		var big *pipeline
		for _, m := range ranked {
			if m.alloc > m.min && (big == nil || m.alloc > big.alloc) {
				big = m
			}
		}
		if big != nil {
			if a := rectFloor(g, big.alloc-1, big.min); a > 0 {
				big.alloc = a
				shrunk = true
			}
		}
		if !shrunk {
			victims = append(victims, ranked[len(ranked)-1])
			ranked = ranked[:len(ranked)-1]
		}
	}
	return nil, victims
}

// placeLocked solves (through the cache) and places one pipeline at its
// current allocation, skipping the solver entirely when nothing changed
// since its last placement.
func (f *Fleet) placeLocked(m *pipeline) error {
	pl := model.Platform{Procs: m.alloc, MemPerProc: f.cfg.Pool.MemPerProc}
	key := adapt.CanonicalSpecKey(m.chain, pl, f.cfg.Solve)
	if m.placed && m.key == key && (!f.grid || sameShape(m.region, m.placedDims)) {
		// Same costs, same allocation (the key covers pl.Procs), and in
		// grid mode a congruent region: keep the placement untouched.
		return nil
	}
	res, path, err := f.cache.Solve(m.chain, pl, f.cfg.Solve)
	if err != nil {
		return err
	}
	if f.grid {
		sub := machine.Grid{Rows: m.region.H, Cols: m.region.W}
		if _, ok := machine.Feasible(res.Mapping, machine.Constraints{Grid: sub}); !ok {
			res, path, err = f.cache.SolveGrid(m.chain, pl, f.cfg.Solve, sub)
			if err != nil {
				return err
			}
		}
		m.placedDims = machine.Rect{H: m.region.H, W: m.region.W}
	}
	m.placed = true
	m.key = key
	m.mapping = res.Mapping
	m.throughput = res.Throughput
	m.latency = res.Latency
	m.path = path
	m.placedGen = f.gen + 1 // rebalanceLocked bumps after placing
	return nil
}

// sameShape reports whether two regions have identical dimensions (a
// mapping feasible in one rectangle is feasible in any congruent one).
func sameShape(a, b machine.Rect) bool { return a.H == b.H && a.W == b.W }

// placement snapshots one pipeline for external use.
func (p *pipeline) placement() Placement {
	return Placement{
		ID: p.id, Tenant: p.tenant, Priority: p.priority,
		Key: p.key, Alloc: p.alloc, Procs: p.mapping.TotalProcs(),
		Region: p.region,
		Mapping: model.Mapping{Chain: p.chain,
			Modules: append([]model.Module(nil), p.mapping.Modules...)},
		Summary:    p.mapping.String(),
		Throughput: p.throughput, Latency: p.latency,
		Path: p.path, Generation: p.placedGen,
	}
}

// Placements snapshots every placed pipeline in admission order.
func (f *Fleet) Placements() []Placement {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Placement, len(f.members))
	for i, m := range f.members {
		out[i] = m.placement()
	}
	return out
}

// Mapping returns the current mapping of one pipeline (a detached copy).
func (f *Fleet) Mapping(id int64) (model.Mapping, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id {
			return model.Mapping{Chain: m.chain,
				Modules: append([]model.Module(nil), m.mapping.Modules...)}, true
		}
	}
	return model.Mapping{}, false
}

// Generation returns the current rebalance generation.
func (f *Fleet) Generation() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	st := f.statsLocked()
	f.mu.Unlock()
	st.Cache = f.cache.Stats()
	return st
}

func (f *Fleet) statsLocked() Stats {
	used := 0
	for _, m := range f.members {
		used += m.alloc
	}
	st := Stats{
		Generation:  f.gen,
		PoolProcs:   f.procs,
		FailedProcs: f.fail,
		UsedProcs:   used,
		Placed:      len(f.members),
		Admitted:    f.admitted,
		Rejected:    f.rejected,
		Departed:    f.departed,
		Evicted:     f.evicted,
		Rebalances:  f.rebalances,
	}
	if f.procs > 0 {
		st.Utilization = float64(used) / float64(f.procs)
	}
	st.LastRebalanceMS = float64(f.lastRebal) / float64(time.Millisecond)
	return st
}

// State snapshots stats plus placements for the /fleet endpoint.
func (f *Fleet) State() State {
	f.mu.Lock()
	st := State{Stats: f.statsLocked(), Pipelines: make([]Placement, len(f.members))}
	for i, m := range f.members {
		st.Pipelines[i] = m.placement()
	}
	f.mu.Unlock()
	st.Cache = f.cache.Stats()
	return st
}

// publishLocked refreshes the fleet_* gauges and counter deltas.
func (f *Fleet) publishLocked() {
	if f.cfg.Registry == nil {
		return
	}
	st := f.statsLocked()
	f.gPlaced.Set(float64(st.Placed))
	f.gPool.Set(float64(st.PoolProcs))
	f.gFailed.Set(float64(st.FailedProcs))
	f.gUsed.Set(float64(st.UsedProcs))
	f.gUtil.Set(st.Utilization)
	f.gGen.Set(float64(st.Generation))
	cs := f.cache.Stats()
	if d := cs.Hits - f.lastCacheHits; d > 0 {
		f.cCacheHit.Add(d)
		f.lastCacheHits = cs.Hits
	}
	if d := cs.Misses - f.lastCacheMiss; d > 0 {
		f.cCacheMiss.Add(d)
		f.lastCacheMiss = cs.Misses
	}
	f.gHitRate.Set(cs.HitRate)
}
