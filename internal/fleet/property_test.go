package fleet

import (
	"math/rand"
	"testing"

	"pipemap/internal/machine"
	"pipemap/internal/model"
)

// driveRandom applies steps random fleet operations and asserts after
// EVERY step that the sum of allocations never exceeds the surviving pool,
// every placed mapping is machine-feasible (checked against
// machine.Feasible directly, not scheduler bookkeeping), and the
// accounting invariant holds.
func driveRandom(t *testing.T, f *Fleet, grid machine.Grid, rng *rand.Rand, steps int) {
	t.Helper()
	var live []int64
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // admit
			s := Spec{
				Tenant:   "t",
				Chain:    genChain(rng, 2+rng.Intn(4)),
				Priority: 1 + rng.Intn(4),
			}
			if rng.Intn(2) == 0 {
				s.MaxProcs = 4 + rng.Intn(16)
			}
			if p, err := f.Admit(s); err == nil {
				live = append(live, p.ID)
			}
		case op < 7: // depart
			if len(live) > 0 {
				i := rng.Intn(len(live))
				if err := f.Depart(live[i]); err != nil {
					// Already evicted by a previous rebalance; drop it.
				}
				live = append(live[:i], live[i+1:]...)
			}
		case op < 9: // fail 1-4 processors
			_ = f.FailProcs(1 + rng.Intn(4))
		default: // restore 1-4
			_ = f.RestoreProcs(1 + rng.Intn(4))
		}
		// Eviction can remove pipelines behind our back: refresh the live
		// set from the fleet's own snapshot.
		placed := map[int64]bool{}
		for _, p := range f.Placements() {
			placed[p.ID] = true
		}
		kept := live[:0]
		for _, id := range live {
			if placed[id] {
				kept = append(kept, id)
			}
		}
		live = kept

		if err := checkPlacements(f, grid); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := checkAccounting(f.Stats()); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestPropertyNeverOverAllocatesFlat drives random admit/depart/fail
// sequences on a flat pool across many seeds.
func TestPropertyNeverOverAllocatesFlat(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f, err := New(Config{Pool: model.Platform{Procs: 24 + rng.Intn(41)}})
		if err != nil {
			t.Fatal(err)
		}
		driveRandom(t, f, machine.Grid{}, rng, 40)
	}
}

// TestPropertyNeverOverAllocatesGrid is the grid-mode variant: the same
// random churn must additionally keep every region a disjoint in-bounds
// rectangle with a machine-feasible mapping inside it.
func TestPropertyNeverOverAllocatesGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid packing property is slow in -short mode")
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		g := machine.Grid{Rows: 4 + rng.Intn(5), Cols: 4 + rng.Intn(5)}
		f, err := New(Config{Grid: g})
		if err != nil {
			t.Fatal(err)
		}
		driveRandom(t, f, g, rng, 25)
	}
}
