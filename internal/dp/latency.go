package dp

import (
	"fmt"

	"pipemap/internal/model"
)

// MinLatency computes the mapping that minimizes one data set's pipeline
// traversal time — the objective Ramaswamy et al. optimize and the one
// the paper defers to Vondran's thesis. Unlike throughput, latency
// decomposes as a sum:
//
//	latency = sum_i exec_i(p_i) + 2 * sum_edges ecom(p_i, p_{i+1})
//
// (each inter-module transfer is charged to both the sender's and the
// receiver's response), so the DP needs only the processor count of the
// last placed module in its state and runs in O(k^2 P^3) time. Modules
// are single-instance: replication can only increase latency (smaller
// instances, same per-data-set path), so the latency optimum never
// replicates. Internal redistributions inside a module are part of its
// composed execution cost.
func MinLatency(c *model.Chain, pl model.Platform) (model.Mapping, error) {
	s, err := newSpanTables(c, pl, Options{DisableReplication: true})
	if err != nil {
		return model.Mapping{}, err
	}
	k, P := s.k, s.P

	// L[b][p][u] = minimal latency of tasks [0, b) when the module ending
	// at b holds p processors and u processors are used in total.
	// Flattened as (b*(P+1)+p)*(P+1)+u.
	stride := P + 1
	size := (k + 1) * stride * stride
	idx := func(b, p, u int) int { return (b*stride+p)*stride + u }
	L := make([]float64, size)
	fill(L, inf)
	type choiceRec struct{ a, pPrev, uPrev int }
	choice := make([]choiceRec, size)

	// Seed: first module [0, b) with p processors.
	for b := 1; b <= k; b++ {
		if s.min[0][b] > P {
			continue
		}
		exec := s.execEff[0][b]
		for p := s.min[0][b]; p <= P; p++ {
			v := exec[p]
			i := idx(b, p, p)
			if v < L[i] {
				L[i] = v
				choice[i] = choiceRec{a: -1}
			}
		}
	}

	// Extend: module [b, b2) with p2 processors after a module ending at b
	// with p processors.
	for b := 1; b < k; b++ {
		for b2 := b + 1; b2 <= k; b2++ {
			min2 := s.min[b][b2]
			if min2 > P {
				continue
			}
			exec2 := s.execEff[b][b2]
			edge := s.ecomV[b-1]
			for p := 1; p <= P; p++ {
				for u := p; u <= P; u++ {
					v := L[idx(b, p, u)]
					if v == inf {
						continue
					}
					for p2 := min2; p2 <= P-u; p2++ {
						nv := v + exec2[p2] + 2*edge[p*stride+p2]
						ni := idx(b2, p2, u+p2)
						if nv < L[ni] {
							L[ni] = nv
							choice[ni] = choiceRec{a: b, pPrev: p, uPrev: u}
						}
					}
				}
			}
		}
	}

	best, bestP, bestU := inf, -1, -1
	for p := 1; p <= P; p++ {
		for u := p; u <= P; u++ {
			if v := L[idx(k, p, u)]; v < best {
				best, bestP, bestU = v, p, u
			}
		}
	}
	if bestP < 0 {
		return model.Mapping{}, fmt.Errorf("dp: no feasible mapping of %d tasks onto %d processors", k, P)
	}

	// Reconstruct right to left.
	var rev []model.Module
	b, p, u := k, bestP, bestU
	for {
		ch := choice[idx(b, p, u)]
		a := ch.a
		if a == -1 {
			a = 0
		}
		rev = append(rev, model.Module{Lo: a, Hi: b, Procs: p, Replicas: 1})
		if ch.a == -1 {
			break
		}
		b, p, u = ch.a, ch.pPrev, ch.uPrev
	}
	mods := make([]model.Module, len(rev))
	for i := range rev {
		mods[i] = rev[len(rev)-1-i]
	}
	return model.Mapping{Chain: c, Modules: mods}, nil
}
