package dp

import (
	"fmt"
	"sync/atomic"
	"time"

	"pipemap/internal/model"
)

// Solver is a reusable, incrementally-updatable engine for the full
// mapping DP of MapChain (clustering + replication + assignment). It
// exists because the adaptive controller re-solves the same instance on
// every refit tick with only a few module cost estimates moved; a fresh
// solve re-derives every layer table from scratch, while the Solver
// snapshots per-layer DP tables and recomputes only the layers a cost
// change can actually reach.
//
// # State and invalidation
//
// The DP state is (b, l, pt, pcur, peffPrev): tasks [0, b) covered, the
// open module spans [b-l, b) with pcur raw processors, pt processors used
// in total, and the previous module's effective count is peffPrev. The
// value of a state is the minimal bottleneck over the *closed* modules —
// the modules covering [0, b-l). It therefore depends only on the
// execution costs of tasks in [0, b-l) (plus structural tables and edge
// transfer costs, which do not change under an execution-cost update).
//
// That gives the invalidation rule: after changing the execution costs of
// task set C with m = min(C), every layer (b, l) with b-l <= m is still
// bit-exact and is reused; every layer with b-l > m is cleared and
// recomputed. Transitions out of layer (b, l) write only into layers
// (b+l2, l2) whose open-module start is b, so the recompute re-runs the
// expansion passes for b = m+1 .. k-1 in order and nothing else. The
// final close scan is always re-run: it charges the last open module
// [k-l, k), which contains a changed task whenever anything changed.
//
// # Dominance pruning
//
// Two states in the same layer with equal (pcur, peffPrev) admit exactly
// the same continuations: any suffix of modules feasible from the state
// using pt total processors is feasible from a state using pt' <= pt, and
// contributes the same future response times. A state is therefore
// dropped ("dominated") when another state in its (pcur, peffPrev) column
// has both fewer-or-equal processors used and a smaller-or-equal value.
// Dropping it cannot change the optimal period: every completion of the
// dominated state is matched by a completion of the dominator that is no
// worse in period and no greater in processors used. Pruning is computed
// from a layer's completed contents only — never during writes — so it is
// a pure function of the table and the incremental recompute reproduces
// it bit-exactly.
//
// # Allocation discipline
//
// All tables, layer arenas and live-state lists are allocated at
// construction (or grown during the first solves); a Resolve call on a
// warmed solver performs zero heap allocations, so a fleet of pipelines
// can re-solve on every adapt tick without GC churn. Incremental
// re-solves run single-threaded: the recomputed region is small and the
// callers (many controllers sharing one process) provide the
// parallelism.
//
// A Solver is NOT safe for concurrent use; callers serialize access (the
// adapt memo cache holds one solver under its lock).
type Solver struct {
	pl  model.Platform
	opt Options
	// chain is the most recently supplied cost view (NewSolver's chain
	// until a Resolve supplies a newer one); returned mappings carry it.
	chain *model.Chain

	k, P, stride int
	lsize        int // stride^3, one (b,l) layer slab

	// Structural per-span tables, flattened at [a*(k+1)+b]; these depend
	// on memory models, MinProcs and Replicable flags only and never
	// change across Resolve calls.
	minP []int // minimum procs of span [a,b); P+1 = infeasible span
	// eff, rep, execEff are per raw processor count: index
	// (a*(k+1)+b)*(P+1)+p.
	eff     []int32
	rep     []int32
	execEff []float64 // the only table an exec-cost update touches
	// ecomV[(e*(P+1)+ps)*(P+1)+pr] is edge e's external transfer cost at
	// effective endpoint counts (ps, pr).
	ecomV []float64

	// Layer arena: k(k+1)/2 slabs of lsize values/choices, ordinal
	// b(b-1)/2 + (l-1) for layer (b, l), 1 <= l <= b <= k.
	val    []float64
	choice []uint64
	// live[ord] lists the non-inf, non-dominated state indices of a layer
	// in deterministic (pt, pcur, peffPrev) scan order; rebuilt whenever
	// the layer is recomputed, reused read-only otherwise.
	live [][]int32

	colMin  []float64 // stride^2 dominance scratch, one (pcur,peff) column each
	changed []bool    // k-length scratch: which tasks moved this Resolve
	tgts    []int     // per-pass feasible target spans scratch

	solved bool
	solves int64          // completed Solve/Resolve runs (full or incremental)
	mods   []model.Module // reconstruction scratch; returned mappings alias it
}

// SolveCount returns the number of completed Solve/Resolve runs on this
// solver. Cache layers assert solve-once behaviour against this counter:
// with N identical specs placed through a cache, the underlying solver's
// count must stay at 1.
func (s *Solver) SolveCount() int64 { return s.solves }

// choicePack packs (prevL, prevPCur, prevEff) into one word; 21 bits each
// bounds P and k at 2^21-1, far beyond any instance the cubic tables fit.
func choicePack(l, pcur, peff int) uint64 {
	return uint64(l)<<42 | uint64(pcur)<<21 | uint64(peff)
}

func choiceUnpack(c uint64) (l, pcur, peff int) {
	return int(c >> 42), int(c >> 21 & (1<<21 - 1)), int(c & (1<<21 - 1))
}

// NewSolver validates the instance and builds all tables and arenas. The
// chain's execution costs are tabulated as given; later Resolve calls
// retabulate only the spans whose tasks are reported changed.
func NewSolver(c *model.Chain, pl model.Platform, opt Options) (*Solver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	k, P := c.Len(), pl.Procs
	stride := P + 1
	s := &Solver{
		pl: pl, opt: opt, chain: c,
		k: k, P: P, stride: stride,
		lsize:   stride * stride * stride,
		minP:    make([]int, k*(k+1)),
		eff:     make([]int32, k*(k+1)*stride),
		rep:     make([]int32, k*(k+1)*stride),
		execEff: make([]float64, k*(k+1)*stride),
		ecomV:   make([]float64, (k-1)*stride*stride),
		colMin:  make([]float64, stride*stride),
		changed: make([]bool, k),
		tgts:    make([]int, 0, k),
		mods:    make([]model.Module, 0, k),
	}
	nLayers := k * (k + 1) / 2
	s.val = make([]float64, nLayers*s.lsize)
	s.choice = make([]uint64, nLayers*s.lsize)
	s.live = make([][]int32, nLayers)
	fill(s.val, inf)
	fill(s.execEff, inf)

	// Structural span tables (min procs, replication splits).
	for a := 0; a < k; a++ {
		for b := a + 1; b <= k; b++ {
			min := c.ModuleMinProcs(a, b, pl.MemPerProc)
			if min < 0 || min > P {
				// Infeasible as a module on this platform; other
				// clusterings may avoid the span, so mark rather than fail.
				s.minP[a*(k+1)+b] = P + 1
				continue
			}
			s.minP[a*(k+1)+b] = min
			repl := c.ModuleReplicable(a, b) && !opt.DisableReplication
			base := (a*(k+1) + b) * stride
			for p := 0; p <= P; p++ {
				r := model.SplitReplicas(p, min, repl)
				if r.Replicas == 0 {
					continue
				}
				s.eff[base+p] = int32(r.ProcsPerInstance)
				s.rep[base+p] = int32(r.Replicas)
			}
		}
	}
	for e := 0; e < k-1; e++ {
		base := e * stride * stride
		for ps := 1; ps <= P; ps++ {
			for pr := 1; pr <= P; pr++ {
				s.ecomV[base+ps*stride+pr] = c.ECom[e].Eval(ps, pr)
			}
		}
	}
	s.tabulateExecAll(c)
	s.seed()
	return s, nil
}

// spanExec evaluates the composed execution cost of span [a, b) at
// per-instance processor count pe without materializing a SumCost: the
// member tasks' execution costs plus the internal redistributions.
func spanExec(c *model.Chain, a, b, pe int) float64 {
	t := 0.0
	for i := a; i < b; i++ {
		t += c.Tasks[i].Exec.Eval(pe)
		if i+1 < b {
			t += c.ICom[i].Eval(pe)
		}
	}
	return t
}

// tabulateSpanExec refreshes execEff for one span from the chain's
// current execution costs.
func (s *Solver) tabulateSpanExec(c *model.Chain, a, b int) {
	base := (a*(s.k+1) + b) * s.stride
	for p := 0; p <= s.P; p++ {
		pe := int(s.eff[base+p])
		if pe == 0 {
			s.execEff[base+p] = inf
			continue
		}
		s.execEff[base+p] = spanExec(c, a, b, pe)
	}
}

func (s *Solver) tabulateExecAll(c *model.Chain) {
	for a := 0; a < s.k; a++ {
		for b := a + 1; b <= s.k; b++ {
			if s.minP[a*(s.k+1)+b] > s.P {
				continue
			}
			s.tabulateSpanExec(c, a, b)
		}
	}
}

// ord is the arena ordinal of layer (b, l), 1 <= l <= b <= k.
func (s *Solver) ord(b, l int) int { return b*(b-1)/2 + (l - 1) }

// vidx is the in-layer index of state (pt, pcur, peffPrev).
func (s *Solver) vidx(pt, pcur, peff int) int { return (pt*s.stride+pcur)*s.stride + peff }

// seed writes the first-module states: module [0, l) holding pcur
// processors, value 0 (no closed modules yet). Seed layers have open
// module start 0, so no execution-cost change ever invalidates them.
func (s *Solver) seed() {
	for l := 1; l <= s.k; l++ {
		min := s.minP[0*(s.k+1)+l]
		if min > s.P {
			continue
		}
		off := s.ord(l, l) * s.lsize
		for pcur := min; pcur <= s.P; pcur++ {
			s.val[off+s.vidx(pcur, pcur, 0)] = 0
		}
		s.buildLive(s.ord(l, l))
	}
}

// buildLive rebuilds a layer's live-state list: finite values, minus the
// dominance-pruned ones, in (pt, pcur, peffPrev) ascending order. It is a
// pure function of the layer's contents, so fresh and incremental solves
// produce identical lists. Returns the number of dominated states
// dropped.
func (s *Solver) buildLive(ord int) int64 {
	fill(s.colMin, inf)
	off := ord * s.lsize
	list := s.live[ord][:0]
	pruned := int64(0)
	idx := 0
	for pt := 0; pt <= s.P; pt++ {
		for pcur := 0; pcur <= s.P; pcur++ {
			col := pcur * s.stride
			for peff := 0; peff <= s.P; peff++ {
				v := s.val[off+idx]
				if v < inf {
					if s.colMin[col+peff] <= v {
						pruned++ // dominated: smaller pt, no worse value
					} else {
						list = append(list, int32(idx))
						s.colMin[col+peff] = v
					}
				}
				idx++
			}
		}
	}
	s.live[ord] = list
	return pruned
}

// target applies every source layer (b, l) to target layer (b+l2, l2):
// sources in ascending l, states in live-list (ascending index) order,
// which fixes the tie-breaking deterministically. Returns state and
// transition counts for instrumentation.
func (s *Solver) target(b, l2 int) (nStates, nTrans int64) {
	k, P, stride := s.k, s.P, s.stride
	min2 := s.minP[b*(k+1)+b+l2]
	eff2 := s.eff[(b*(k+1)+b+l2)*stride:]
	nOff := s.ord(b+l2, l2) * s.lsize
	outTab := s.ecomV[(b-1)*stride*stride:]
	for l := 1; l <= b; l++ {
		a := b - l
		if s.minP[a*(k+1)+b] > P {
			continue
		}
		srcOff := s.ord(b, l) * s.lsize
		spanBase := (a*(k+1) + b) * stride
		var inTab []float64
		if a > 0 {
			inTab = s.ecomV[(a-1)*stride*stride:]
		}
		for _, idx32 := range s.live[s.ord(b, l)] {
			idx := int(idx32)
			peff := idx % stride
			rest := idx / stride
			pcur := rest % stride
			pt := rest / stride
			e := int(s.eff[spanBase+pcur])
			if e == 0 {
				continue
			}
			nStates++
			v := s.val[srcOff+idx]
			r := float64(s.rep[spanBase+pcur])
			in := 0.0
			if inTab != nil {
				in = inTab[peff*stride+e]
			}
			partial := (in + s.execEff[spanBase+pcur]) / r
			outRow := outTab[e*stride:]
			ch := choicePack(l, pcur, peff)
			for p2 := min2; p2 <= P-pt; p2++ {
				resp := partial + outRow[int(eff2[p2])]/r
				nv := v
				if resp > nv {
					nv = resp
				}
				ni := ((pt+p2)*stride+p2)*stride + e
				if nv < s.val[nOff+ni] {
					s.val[nOff+ni] = nv
					s.choice[nOff+ni] = ch
				}
			}
			if n := P - pt - min2 + 1; n > 0 {
				nTrans += int64(n)
			}
		}
	}
	return nStates, nTrans
}

// pass expands every layer at open-module start b: transitions from
// sources (b, l) into targets (b+l2, l2). Targets are disjoint slabs, so
// the fresh solve computes them in parallel; the incremental path stays
// serial (and allocation-free) because the recomputed region is small and
// concurrent controllers provide the parallelism.
func (s *Solver) pass(b int, par bool, ins instrument) {
	k, P := s.k, s.P
	layerT0 := time.Time{}
	if ins.on {
		layerT0 = time.Now()
	}
	s.tgts = s.tgts[:0]
	for l2 := 1; l2 <= k-b; l2++ {
		if s.minP[b*(k+1)+b+l2] <= P {
			s.tgts = append(s.tgts, l2)
		}
	}
	var states, transitions, pruned int64
	if par {
		var aSt, aTr atomic.Int64
		tgts := s.tgts
		parallelFor(len(tgts), func(ti int) {
			st, tr := s.target(b, tgts[ti])
			aSt.Add(st)
			aTr.Add(tr)
		})
		states, transitions = aSt.Load(), aTr.Load()
	} else {
		for _, l2 := range s.tgts {
			st, tr := s.target(b, l2)
			states += st
			transitions += tr
		}
	}
	// Targets are final once every source l has been applied: build their
	// live lists now (dominance is a pure function of the completed slab).
	for _, l2 := range s.tgts {
		pruned += s.buildLive(s.ord(b+l2, l2))
	}
	ins.layer("map_chain", b, layerT0, states, transitions, pruned)
}

// scan closes the chain: every layer (k, l) charges its open module's
// response without an output edge, and the best state wins. Iteration
// order (l, then live order) matches the expansion tie-breaking.
func (s *Solver) scan() (model.Mapping, error) {
	k, P, stride := s.k, s.P, s.stride
	best := inf
	var bestL, bestPT, bestPCur, bestEff int
	for l := 1; l <= k; l++ {
		a := k - l
		if s.minP[a*(k+1)+k] > P {
			continue
		}
		off := s.ord(k, l) * s.lsize
		spanBase := (a*(k+1) + k) * stride
		var inTab []float64
		if a > 0 {
			inTab = s.ecomV[(a-1)*stride*stride:]
		}
		for _, idx32 := range s.live[s.ord(k, l)] {
			idx := int(idx32)
			peff := idx % stride
			rest := idx / stride
			pcur := rest % stride
			pt := rest / stride
			e := int(s.eff[spanBase+pcur])
			if e == 0 {
				continue
			}
			v := s.val[off+idx]
			in := 0.0
			if inTab != nil {
				in = inTab[peff*stride+e]
			}
			resp := (in + s.execEff[spanBase+pcur]) / float64(s.rep[spanBase+pcur])
			if resp > v {
				v = resp
			}
			if v < best {
				best = v
				bestL, bestPT, bestPCur, bestEff = l, pt, pcur, peff
			}
		}
	}
	if best == inf {
		return model.Mapping{}, fmt.Errorf("dp: no feasible mapping of %d tasks onto %d processors", k, P)
	}

	// Reconstruct right to left into the reusable scratch.
	s.mods = s.mods[:0]
	b, l, pt, pcur, effPrev := k, bestL, bestPT, bestPCur, bestEff
	for {
		a := b - l
		spanBase := (a*(k+1) + b) * stride
		s.mods = append(s.mods, model.Module{
			Lo: a, Hi: b,
			Procs:    int(s.eff[spanBase+pcur]),
			Replicas: int(s.rep[spanBase+pcur]),
		})
		if a == 0 {
			break
		}
		pl, pp, pe := choiceUnpack(s.choice[s.ord(b, l)*s.lsize+s.vidx(pt, pcur, effPrev)])
		b, l, pt, pcur, effPrev = a, pl, pt-pcur, pp, pe
	}
	for i, j := 0, len(s.mods)-1; i < j; i, j = i+1, j-1 {
		s.mods[i], s.mods[j] = s.mods[j], s.mods[i]
	}
	return model.Mapping{Chain: s.chain, Modules: s.mods}, nil
}

// run recomputes every layer whose open-module start exceeds m and
// re-scans the close states. m = 0 recomputes everything (a fresh solve);
// m = k-1 recomputes nothing and only re-scans.
func (s *Solver) run(m int, par bool, ins instrument) (model.Mapping, error) {
	solveT0 := time.Time{}
	if ins.on {
		solveT0 = time.Now()
	}
	cleared := 0
	for b := 1; b <= s.k; b++ {
		for l := 1; l <= b; l++ {
			if b-l <= m {
				continue
			}
			ord := s.ord(b, l)
			off := ord * s.lsize
			fill(s.val[off:off+s.lsize], inf)
			s.live[ord] = s.live[ord][:0]
			cleared++
		}
	}
	for b := m + 1; b < s.k; b++ {
		s.pass(b, par, ins)
	}
	mapping, err := s.scan()
	if err != nil {
		return model.Mapping{}, err
	}
	if ins.on {
		ins.metrics.Add("dp.incremental.layers_cleared", int64(cleared))
		ins.metrics.Add("dp.incremental.layers_reused", int64(s.k*(s.k+1)/2-cleared))
		ins.done("map_chain", s.k, s.P, solveT0)
	}
	s.solved = true
	s.solves++
	return mapping, nil
}

// Solve runs a fresh full solve (parallel across layer targets) and
// returns the optimal mapping. The mapping's Modules alias solver-owned
// scratch that the next Solve/Resolve overwrites; callers that retain the
// result across solves must copy it.
func (s *Solver) Solve() (model.Mapping, error) {
	return s.run(0, true, s.opt.instrument())
}

// Resolve incrementally re-solves after an execution-cost update. chain
// must be structurally identical to the chain the solver was built from —
// same length, memory models, MinProcs, Replicable flags, and identical
// internal and external communication costs — and may differ from the
// previously solved costs only in the Exec functions of the tasks listed
// in changed. An empty changed set re-derives the previous answer from
// the retained tables (a cheap close-scan).
//
// The result is bit-identical to a fresh Solve on chain: the reused
// layers are exactly the ones an exhaustive recompute would reproduce,
// and the recomputed ones replay the same deterministic transition order.
// Resolve runs single-threaded and performs zero heap allocations once
// the solver is warm. The returned mapping aliases solver-owned scratch,
// exactly as for Solve.
func (s *Solver) Resolve(chain *model.Chain, changed []int) (model.Mapping, error) {
	if chain.Len() != s.k {
		return model.Mapping{}, fmt.Errorf("dp: incremental resolve with %d tasks on a %d-task solver",
			chain.Len(), s.k)
	}
	for i := range s.changed {
		s.changed[i] = false
	}
	m := s.k // min changed index; k = nothing changed
	for _, i := range changed {
		if i < 0 || i >= s.k {
			return model.Mapping{}, fmt.Errorf("dp: changed task %d out of range [0,%d)", i, s.k)
		}
		if !s.changed[i] {
			s.changed[i] = true
			if i < m {
				m = i
			}
		}
	}
	ins := s.opt.instrument()
	s.chain = chain
	if !s.solved {
		// Never solved: whatever the caller believes changed, every span
		// must be tabulated from this chain.
		s.tabulateExecAll(chain)
		return s.run(0, false, ins)
	}
	if m < s.k {
		// Refresh execEff for every feasible span touching a changed task.
		for a := 0; a < s.k; a++ {
			for b := a + 1; b <= s.k; b++ {
				if s.minP[a*(s.k+1)+b] > s.P {
					continue
				}
				touched := false
				for i := a; i < b; i++ {
					if s.changed[i] {
						touched = true
						break
					}
				}
				if touched {
					s.tabulateSpanExec(chain, a, b)
				}
			}
		}
	}
	if m > s.k-1 {
		m = s.k - 1 // nothing changed: reuse every layer, re-scan only
	}
	return s.run(m, false, ins)
}
