package dp

import (
	"math/rand"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// balancedChain has two identical tasks and no communication: the optimal
// exclusive assignment splits the processors evenly.
func balancedChain() *model.Chain {
	exec := model.PolyExec{C2: 10}
	return &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: exec, Replicable: false},
			{Name: "b", Exec: exec, Replicable: false},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
}

func TestAssignBalances(t *testing.T) {
	c := balancedChain()
	m, err := Assign(c, model.Platform{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Modules[0].Procs != 4 || m.Modules[1].Procs != 4 {
		t.Errorf("assignment = %v, want 4/4", m)
	}
	if got, want := m.Throughput(), 4.0/10.0; !testutil.AlmostEqual(got, want, 1e-9) {
		t.Errorf("throughput = %g, want %g", got, want)
	}
}

func TestAssignUnevenLoad(t *testing.T) {
	// Task b is 3x heavier; with 8 processors and no comm, optimal gives b
	// more processors (2/6 balances at 5 vs 2; check against brute force).
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 10}},
			{Name: "b", Exec: model.PolyExec{C2: 30}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 8}
	m, err := Assign(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BruteForce(c, pl, Options{DisableClustering: true, DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
		t.Errorf("Assign throughput %g != brute force %g", m.Throughput(), ref.Throughput())
	}
	if m.Modules[1].Procs <= m.Modules[0].Procs {
		t.Errorf("heavier task got %d procs vs %d", m.Modules[1].Procs, m.Modules[0].Procs)
	}
}

func TestAssignRespectsCommunication(t *testing.T) {
	// With expensive per-processor comm overhead, piling processors onto a
	// task hurts its neighbour's response; DP must still match brute force.
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4}},
			{Name: "b", Exec: model.PolyExec{C2: 4}},
			{Name: "c", Exec: model.PolyExec{C2: 4}},
		},
		ICom: []model.CostFunc{model.ZeroExec(), model.ZeroExec()},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.1, C4: 0.3, C5: 0.3},
			model.PolyComm{C1: 0.1, C4: 0.3, C5: 0.3},
		},
	}
	pl := model.Platform{Procs: 10}
	m, err := Assign(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BruteForce(c, pl, Options{DisableClustering: true, DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
		t.Errorf("Assign throughput %g != brute force %g\n dp: %v\n bf: %v",
			m.Throughput(), ref.Throughput(), &m, &ref)
	}
	// Heavy overhead means the best mapping should not use all processors.
	if m.TotalProcs() == pl.Procs {
		t.Logf("note: mapping used all processors: %v", &m)
	}
}

func TestAssignAllowsUnusedProcessors(t *testing.T) {
	// A single task whose exec time grows with p beyond 4 processors: the
	// optimal assignment wastes the rest.
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4, C3: 0.3}},
		},
	}
	m, err := Assign(c, model.Platform{Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	// f(p) = 4/p + 0.3p is minimized near sqrt(4/0.3) ~ 3.65 -> p=4 (f=1.3)
	// vs p=3 (f=1.233..): check against direct evaluation.
	bestP, bestF := 0, 1e18
	for p := 1; p <= 16; p++ {
		f := c.Tasks[0].Exec.Eval(p)
		if f < bestF {
			bestP, bestF = p, f
		}
	}
	if m.Modules[0].Procs != bestP {
		t.Errorf("single task got %d procs, want %d", m.Modules[0].Procs, bestP)
	}
}

func TestAssignReplicatedPrefersReplication(t *testing.T) {
	// A perfectly parallel task with heavy per-processor overhead: four
	// instances of 1 processor beat one instance of 4.
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C1: 1, C2: 1}, Replicable: true},
		},
	}
	pl := model.Platform{Procs: 4}
	m, err := AssignReplicated(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Modules[0].Replicas != 4 || m.Modules[0].Procs != 1 {
		t.Errorf("mapping = %v, want 4 replicas of 1 processor", &m)
	}
	// Throughput = r / f(1) = 4/2 = 2; single instance would give 1/1.25.
	if got := m.Throughput(); !testutil.AlmostEqual(got, 2, 1e-9) {
		t.Errorf("throughput = %g, want 2", got)
	}
}

func TestAssignReplicatedHonorsMemoryMinimum(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C1: 1, C2: 1}, Replicable: true,
				Mem: model.Memory{Data: 2500}},
		},
	}
	pl := model.Platform{Procs: 8, MemPerProc: 1000}
	m, err := AssignReplicated(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	// minProcs = 3, so at most floor(8/3) = 2 instances of 4 processors.
	if m.Modules[0].Replicas != 2 || m.Modules[0].Procs != 4 {
		t.Errorf("mapping = %v, want 2 replicas of 4 processors", &m)
	}
}

func TestAssignErrors(t *testing.T) {
	c := balancedChain()
	if _, err := Assign(c, model.Platform{Procs: 0}); err == nil {
		t.Error("zero processors accepted")
	}
	c2 := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 5000}},
			{Name: "b", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 5000}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	// Each task needs 5 processors; only 8 available.
	if _, err := Assign(c2, model.Platform{Procs: 8, MemPerProc: 1000}); err == nil {
		t.Error("infeasible chain accepted")
	}
	c3 := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Fixed: 2000}},
		},
	}
	if _, err := Assign(c3, model.Platform{Procs: 8, MemPerProc: 1000}); err == nil {
		t.Error("memory-unfittable task accepted")
	}
	bad := &model.Chain{}
	if _, err := Assign(bad, model.Platform{Procs: 8}); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestAssignMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 60; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 6+rng.Intn(6))
		opt := Options{DisableClustering: true, DisableReplication: trial%2 == 0}
		var m model.Mapping
		var err error
		if opt.DisableReplication {
			m, err = Assign(c, pl)
		} else {
			m, err = AssignReplicated(c, pl)
		}
		ref, refErr := BruteForce(c, pl, opt)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("trial %d: dp err=%v, brute err=%v", trial, err, refErr)
		}
		if err != nil {
			continue
		}
		if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
			t.Errorf("trial %d: dp throughput %g != brute %g\n dp: %v\n bf: %v",
				trial, m.Throughput(), ref.Throughput(), &m, &ref)
		}
		if err := m.Validate(pl); err != nil {
			t.Errorf("trial %d: dp mapping invalid: %v", trial, err)
		}
	}
}

func TestAssignMonotoneInProcessors(t *testing.T) {
	// Adding processors never decreases optimal throughput (waste is
	// allowed, so the previous optimum remains feasible).
	rng := rand.New(rand.NewSource(7))
	c, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 4)
	prev := -1.0
	for P := 4; P <= 20; P++ {
		pl.Procs = P
		m, err := AssignReplicated(c, pl)
		if err != nil {
			continue
		}
		thr := m.Throughput()
		if thr < prev-1e-9 {
			t.Errorf("P=%d: throughput %g < previous %g", P, thr, prev)
		}
		if thr > prev {
			prev = thr
		}
	}
}

func TestAssignSingleTask(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{{Name: "only", Exec: model.PolyExec{C2: 6}, Replicable: true}},
	}
	m, err := Assign(c, model.Platform{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Modules[0].Procs != 3 || m.Modules[0].Replicas != 1 {
		t.Errorf("mapping = %v, want 3 procs 1 replica", &m)
	}
}

func TestRandomAssignmentsNeverBeatDP(t *testing.T) {
	// Property: no random valid assignment beats the DP's claimed optimum.
	rng := rand.New(rand.NewSource(87))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 15; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 6+rng.Intn(4))
		opt, err := AssignReplicated(c, pl)
		if err != nil {
			continue
		}
		best := opt.Throughput()
		k := c.Len()
		mins := make([]int, k)
		feasible := true
		for i := 0; i < k; i++ {
			mins[i] = c.ModuleMinProcs(i, i+1, pl.MemPerProc)
			if mins[i] < 0 {
				feasible = false
			}
		}
		if !feasible {
			continue
		}
		for probe := 0; probe < 200; probe++ {
			mods := make([]model.Module, k)
			used := 0
			ok := true
			for i := 0; i < k; i++ {
				budget := pl.Procs - used
				rest := 0
				for j := i + 1; j < k; j++ {
					rest += mins[j]
				}
				hi := budget - rest
				if hi < mins[i] {
					ok = false
					break
				}
				p := mins[i] + rng.Intn(hi-mins[i]+1)
				r := model.SplitReplicas(p, mins[i], c.Tasks[i].Replicable)
				mods[i] = model.Module{Lo: i, Hi: i + 1,
					Procs: r.ProcsPerInstance, Replicas: r.Replicas}
				used += p
			}
			if !ok {
				continue
			}
			m := model.Mapping{Chain: c, Modules: mods}
			if thr := m.Throughput(); thr > best+1e-9 {
				t.Fatalf("trial %d probe %d: random %v (%g) beats DP (%g)",
					trial, probe, &m, thr, best)
			}
		}
	}
}
