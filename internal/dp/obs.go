package dp

import (
	"fmt"
	"time"

	"pipemap/internal/obs"
)

// instrument bundles the solver's optional tracing/metrics sinks. The zero
// value (from Options with nil sinks) is disabled and all methods are
// no-ops, so instrumentation calls need no conditionals at the call sites.
type instrument struct {
	on      bool
	trace   *obs.Tracer
	metrics *obs.Registry
}

func (o Options) instrument() instrument {
	return instrument{
		on:      o.Trace.Enabled() || o.Metrics.Enabled(),
		trace:   o.Trace,
		metrics: o.Metrics,
	}
}

// layer records one completed DP layer: a trace span plus aggregate
// counters. states is the number of DP cells written, transitions the
// number of candidate predecessor evaluations, and pruned the number of
// source states skipped as infeasible.
func (in instrument) layer(algo string, layer int, start time.Time, states, transitions, pruned int64) {
	if !in.on {
		return
	}
	d := time.Since(start)
	in.trace.SpanArgs("dp", fmt.Sprintf("%s layer %d", algo, layer), 0, start, d,
		map[string]any{"layer": layer, "states": states, "transitions": transitions, "pruned": pruned})
	in.metrics.Inc("dp." + algo + ".layers")
	in.metrics.Add("dp."+algo+".states", states)
	in.metrics.Add("dp."+algo+".transitions", transitions)
	in.metrics.Add("dp."+algo+".pruned", pruned)
	in.metrics.Observe("dp."+algo+".layer_seconds", d.Seconds())
}

// done records the overall solve span for one DP invocation.
func (in instrument) done(algo string, k, P int, start time.Time) {
	if !in.on {
		return
	}
	d := time.Since(start)
	in.trace.SpanArgs("dp", algo, 0, start, d, map[string]any{"k": k, "P": P})
	in.metrics.Observe("dp."+algo+".solve_seconds", d.Seconds())
}
