package dp

import (
	"fmt"
	"sync/atomic"
	"time"

	"pipemap/internal/model"
	"pipemap/internal/obs"
)

// Options configures the full mapping DP.
type Options struct {
	// DisableReplication forces every module to run as a single instance.
	DisableReplication bool
	// DisableClustering forces every task into its own module.
	DisableClustering bool
	// Trace receives per-layer solver spans (per-layer timing, states
	// evaluated, prune counts); nil disables tracing.
	Trace *obs.Tracer
	// Metrics receives solver counters and timing histograms; nil disables.
	Metrics *obs.Registry
}

// spanTables extends taskTables with per-module-span data: for every
// contiguous task range [a, b) the composed execution cost, minimum
// processors, and replication split at each raw processor count.
type spanTables struct {
	k, P int
	// min[a][b], replicable[a][b] describe module [a, b).
	min        [][]int
	replicable [][]bool
	// eff[a][b][p], rep[a][b][p], execEff[a][b][p] are the effective
	// processor count, replication degree and execution time of module
	// [a, b) holding p raw processors (eff == 0 if infeasible).
	eff     [][][]int
	rep     [][][]int
	execEff [][][]float64
	// ecomV[e][ps*(P+1)+pr] is the raw external transfer table of edge e at
	// *effective* endpoint counts ps, pr (not raw counts: module spans
	// differ, so effective counts are resolved by the caller).
	ecomV [][]float64
}

func newSpanTables(c *model.Chain, pl model.Platform, opt Options) (*spanTables, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	k, P := c.Len(), pl.Procs
	s := &spanTables{
		k: k, P: P,
		min:        make([][]int, k),
		replicable: make([][]bool, k),
		eff:        make([][][]int, k),
		rep:        make([][][]int, k),
		execEff:    make([][][]float64, k),
		ecomV:      make([][]float64, k-1),
	}
	for a := 0; a < k; a++ {
		s.min[a] = make([]int, k+1)
		s.replicable[a] = make([]bool, k+1)
		s.eff[a] = make([][]int, k+1)
		s.rep[a] = make([][]int, k+1)
		s.execEff[a] = make([][]float64, k+1)
		for b := a + 1; b <= k; b++ {
			min := c.ModuleMinProcs(a, b, pl.MemPerProc)
			if min < 0 || min > P {
				// The span cannot be a module on this platform; mark it
				// infeasible rather than failing: other clusterings may
				// avoid it. A fully infeasible chain surfaces in the DP.
				s.min[a][b] = P + 1
				continue
			}
			s.min[a][b] = min
			s.replicable[a][b] = c.ModuleReplicable(a, b) && !opt.DisableReplication
			exec := c.ModuleExec(a, b)
			eff := make([]int, P+1)
			rep := make([]int, P+1)
			ex := make([]float64, P+1)
			for p := 0; p <= P; p++ {
				r := model.SplitReplicas(p, min, s.replicable[a][b])
				if r.Replicas == 0 {
					ex[p] = inf
					continue
				}
				eff[p] = r.ProcsPerInstance
				rep[p] = r.Replicas
				ex[p] = exec.Eval(r.ProcsPerInstance)
			}
			s.eff[a][b] = eff
			s.rep[a][b] = rep
			s.execEff[a][b] = ex
		}
	}
	for e := 0; e < k-1; e++ {
		tab := make([]float64, (P+1)*(P+1))
		for ps := 1; ps <= P; ps++ {
			for pr := 1; pr <= P; pr++ {
				tab[ps*(P+1)+pr] = c.ECom[e].Eval(ps, pr)
			}
		}
		s.ecomV[e] = tab
	}
	return s, nil
}

// MapChain computes the optimal mapping of the chain — clustering tasks
// into modules, replicating modules, and assigning processors — per
// section 3.3 of the paper. Time is O(P^4 k^3) and memory O(P^3 k^2) in
// this implementation (the paper reports O(P^4 k^2); the extra factor of k
// comes from carrying the span of the open module explicitly, which keeps
// the recurrence direct). Practical for k <= 8 on P <= 64; use the greedy
// heuristic beyond that.
func MapChain(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	if opt.DisableClustering {
		return assignEngine(c, pl, !opt.DisableReplication, opt)
	}
	s, err := newSpanTables(c, pl, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	ins := opt.instrument()
	solveT0 := time.Now()
	k, P := s.k, s.P
	stride := P + 1

	// State: (b, l, pt, pcur, peffPrev) — tasks [0, b) are covered, the
	// last (still "open") module spans [b-l, b) with pcur raw processors,
	// the module before it has effective processor count peffPrev (0 if
	// none), and pt raw processors are used in total. The value is the
	// minimal bottleneck over all *closed* modules (everything before the
	// open one). The open module's response is charged when the next module
	// is placed — at that point its output edge partner is known — or at
	// the end of the chain.
	type layerKey struct{ b, l int }
	layerSize := stride * stride * stride
	vidx := func(pt, pcur, peffPrev int) int { return (pt*stride+pcur)*stride + peffPrev }
	layers := make(map[layerKey][]float64)
	type choiceRec struct {
		prevL    int // span of the previous module (0 if none)
		prevPCur int // raw processors of the previous module
		prevEff  int // peffPrev of the source state
	}
	choices := make(map[layerKey][]choiceRec)

	getLayer := func(b, l int) []float64 {
		key := layerKey{b, l}
		lay, ok := layers[key]
		if !ok {
			lay = make([]float64, layerSize)
			fill(lay, inf)
			layers[key] = lay
			ch := make([]choiceRec, layerSize)
			choices[key] = ch
		}
		return lay
	}

	// Seed: the first module spans [0, l) with pcur processors.
	for l := 1; l <= k; l++ {
		if s.min[0][l] > P {
			continue
		}
		lay := getLayer(l, l)
		for pcur := s.min[0][l]; pcur <= P; pcur++ {
			// No closed modules yet. Unused processors are permitted
			// because the final scan accepts any total pt <= P.
			lay[vidx(pcur, pcur, 0)] = 0
		}
	}

	// Expand states in order of b, then by open-module span l.
	for b := 1; b < k; b++ {
		layerT0 := time.Now()
		var states, transitions, pruned atomic.Int64
		for l := 1; l <= b; l++ {
			key := layerKey{b, l}
			lay, ok := layers[key]
			if !ok {
				continue
			}
			a := b - l // open module is [a, b)
			execOpen := s.execEff[a][b]
			effOpen := s.eff[a][b]
			repOpen := s.rep[a][b]
			inTab := []float64(nil)
			if a > 0 {
				inTab = s.ecomV[a-1]
			}
			outTab := s.ecomV[b-1]
			// Place the next module [b, b+l2) with p2 raw processors. The l2
			// options write to distinct target layers (b+l2, l2) and only
			// read the shared source layer, so they run in parallel.
			targets := make([]int, 0, k-b)
			for l2 := 1; l2 <= k-b; l2++ {
				if s.min[b][b+l2] > P {
					continue
				}
				// Materialize target layers serially (map writes).
				getLayer(b+l2, l2)
				targets = append(targets, l2)
			}
			parallelFor(len(targets), func(ti int) {
				l2 := targets[ti]
				min2 := s.min[b][b+l2]
				eff2 := s.eff[b][b+l2]
				nkey := layerKey{b + l2, l2}
				nlay := layers[nkey]
				nch := choices[nkey]
				var nStates, nTrans, nPruned int64
				for pt := 0; pt <= P; pt++ {
					for pcur := s.min[a][b]; pcur <= pt; pcur++ {
						base := (pt*stride + pcur) * stride
						e := effOpen[pcur]
						if e == 0 {
							nPruned++
							continue
						}
						r := float64(repOpen[pcur])
						for peffPrev := 0; peffPrev <= P; peffPrev++ {
							v := lay[base+peffPrev]
							if v == inf {
								nPruned++
								continue
							}
							nStates++
							in := 0.0
							if inTab != nil {
								in = inTab[peffPrev*stride+e]
							}
							partial := (in + execOpen[pcur]) / r
							for p2 := min2; p2 <= P-pt; p2++ {
								resp := partial + outTab[e*stride+eff2[p2]]/r
								nv := v
								if resp > nv {
									nv = resp
								}
								ni := vidx(pt+p2, p2, e)
								if nv < nlay[ni] {
									nlay[ni] = nv
									nch[ni] = choiceRec{prevL: l, prevPCur: pcur, prevEff: peffPrev}
								}
							}
							if p2n := P - pt - min2 + 1; p2n > 0 {
								nTrans += int64(p2n)
							}
						}
					}
				}
				if ins.on {
					states.Add(nStates)
					transitions.Add(nTrans)
					pruned.Add(nPruned)
				}
			})
		}
		ins.layer("map_chain", b, layerT0, states.Load(), transitions.Load(), pruned.Load())
	}

	// Close the chain: states with b == k charge the open module's response
	// without an output edge.
	best := inf
	var bestL, bestPT, bestPCur, bestEff int
	for l := 1; l <= k; l++ {
		key := layerKey{k, l}
		lay, ok := layers[key]
		if !ok {
			continue
		}
		a := k - l
		inTab := []float64(nil)
		if a > 0 {
			inTab = s.ecomV[a-1]
		}
		for pt := 0; pt <= P; pt++ {
			for pcur := s.min[a][k]; pcur <= pt; pcur++ {
				e := s.eff[a][k][pcur]
				if e == 0 {
					continue
				}
				r := float64(s.rep[a][k][pcur])
				base := (pt*stride + pcur) * stride
				for peffPrev := 0; peffPrev <= P; peffPrev++ {
					v := lay[base+peffPrev]
					if v == inf {
						continue
					}
					in := 0.0
					if inTab != nil {
						in = inTab[peffPrev*stride+e]
					}
					resp := (in + s.execEff[a][k][pcur]) / r
					if resp > v {
						v = resp
					}
					if v < best {
						best = v
						bestL, bestPT, bestPCur, bestEff = l, pt, pcur, peffPrev
					}
				}
			}
		}
	}
	if best == inf {
		return model.Mapping{}, fmt.Errorf("dp: no feasible mapping of %d tasks onto %d processors", k, P)
	}

	// Reconstruct modules right to left.
	var rev []model.Module
	b, l, pt, pcur, effPrev := k, bestL, bestPT, bestPCur, bestEff
	for {
		a := b - l
		rev = append(rev, model.Module{
			Lo: a, Hi: b,
			Procs:    s.eff[a][b][pcur],
			Replicas: s.rep[a][b][pcur],
		})
		if a == 0 {
			break
		}
		ch := choices[layerKey{b, l}][vidx(pt, pcur, effPrev)]
		b, l, pt, pcur, effPrev = a, ch.prevL, pt-pcur, ch.prevPCur, ch.prevEff
	}
	mods := make([]model.Module, len(rev))
	for i := range rev {
		mods[i] = rev[len(rev)-1-i]
	}
	ins.done("map_chain", k, P, solveT0)
	return model.Mapping{Chain: c, Modules: mods}, nil
}

// MapExhaustive enumerates all 2^(k-1) clusterings of the chain and solves
// each with the assignment DP over modules, returning the best mapping. It
// is exponential in k and exists to cross-validate MapChain.
func MapExhaustive(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	var best model.Mapping
	bestThr := -1.0
	var lastErr error
	for _, spans := range model.AllClusterings(c.Len()) {
		m, err := AssignClustered(c, pl, spans, opt)
		if err != nil {
			lastErr = err
			continue
		}
		if thr := m.Throughput(); thr > bestThr {
			bestThr, best = thr, m
		}
	}
	if bestThr < 0 {
		return model.Mapping{}, fmt.Errorf("dp: no clustering is feasible: %w", lastErr)
	}
	return best, nil
}

// AssignClustered solves optimal processor assignment (with replication
// unless disabled) for a fixed clustering, by collapsing each module into a
// synthetic task and running the assignment DP on the module chain.
func AssignClustered(c *model.Chain, pl model.Platform, spans []model.Span, opt Options) (model.Mapping, error) {
	if !model.ValidClustering(spans, c.Len()) {
		return model.Mapping{}, fmt.Errorf("dp: invalid clustering %v for %d tasks", spans, c.Len())
	}
	mc := model.CollapseClustering(c, spans)
	m, err := assignEngine(mc, pl, !opt.DisableReplication, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	// Translate module-chain task indices back to original task spans.
	mods := make([]model.Module, len(m.Modules))
	for i, mod := range m.Modules {
		mods[i] = model.Module{
			Lo: spans[i].Lo, Hi: spans[i].Hi,
			Procs:    mod.Procs,
			Replicas: mod.Replicas,
		}
	}
	return model.Mapping{Chain: c, Modules: mods}, nil
}
