package dp

import (
	"fmt"

	"pipemap/internal/model"
	"pipemap/internal/obs"
)

// Options configures the full mapping DP.
type Options struct {
	// DisableReplication forces every module to run as a single instance.
	DisableReplication bool
	// DisableClustering forces every task into its own module.
	DisableClustering bool
	// Trace receives per-layer solver spans (per-layer timing, states
	// evaluated, prune counts); nil disables tracing.
	Trace *obs.Tracer
	// Metrics receives solver counters and timing histograms; nil disables.
	Metrics *obs.Registry
}

// spanTables extends taskTables with per-module-span data: for every
// contiguous task range [a, b) the composed execution cost, minimum
// processors, and replication split at each raw processor count.
type spanTables struct {
	k, P int
	// min[a][b], replicable[a][b] describe module [a, b).
	min        [][]int
	replicable [][]bool
	// eff[a][b][p], rep[a][b][p], execEff[a][b][p] are the effective
	// processor count, replication degree and execution time of module
	// [a, b) holding p raw processors (eff == 0 if infeasible).
	eff     [][][]int
	rep     [][][]int
	execEff [][][]float64
	// ecomV[e][ps*(P+1)+pr] is the raw external transfer table of edge e at
	// *effective* endpoint counts ps, pr (not raw counts: module spans
	// differ, so effective counts are resolved by the caller).
	ecomV [][]float64
}

func newSpanTables(c *model.Chain, pl model.Platform, opt Options) (*spanTables, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	k, P := c.Len(), pl.Procs
	s := &spanTables{
		k: k, P: P,
		min:        make([][]int, k),
		replicable: make([][]bool, k),
		eff:        make([][][]int, k),
		rep:        make([][][]int, k),
		execEff:    make([][][]float64, k),
		ecomV:      make([][]float64, k-1),
	}
	for a := 0; a < k; a++ {
		s.min[a] = make([]int, k+1)
		s.replicable[a] = make([]bool, k+1)
		s.eff[a] = make([][]int, k+1)
		s.rep[a] = make([][]int, k+1)
		s.execEff[a] = make([][]float64, k+1)
		for b := a + 1; b <= k; b++ {
			min := c.ModuleMinProcs(a, b, pl.MemPerProc)
			if min < 0 || min > P {
				// The span cannot be a module on this platform; mark it
				// infeasible rather than failing: other clusterings may
				// avoid it. A fully infeasible chain surfaces in the DP.
				s.min[a][b] = P + 1
				continue
			}
			s.min[a][b] = min
			s.replicable[a][b] = c.ModuleReplicable(a, b) && !opt.DisableReplication
			exec := c.ModuleExec(a, b)
			eff := make([]int, P+1)
			rep := make([]int, P+1)
			ex := make([]float64, P+1)
			for p := 0; p <= P; p++ {
				r := model.SplitReplicas(p, min, s.replicable[a][b])
				if r.Replicas == 0 {
					ex[p] = inf
					continue
				}
				eff[p] = r.ProcsPerInstance
				rep[p] = r.Replicas
				ex[p] = exec.Eval(r.ProcsPerInstance)
			}
			s.eff[a][b] = eff
			s.rep[a][b] = rep
			s.execEff[a][b] = ex
		}
	}
	for e := 0; e < k-1; e++ {
		tab := make([]float64, (P+1)*(P+1))
		for ps := 1; ps <= P; ps++ {
			for pr := 1; pr <= P; pr++ {
				tab[ps*(P+1)+pr] = c.ECom[e].Eval(ps, pr)
			}
		}
		s.ecomV[e] = tab
	}
	return s, nil
}

// MapChain computes the optimal mapping of the chain — clustering tasks
// into modules, replicating modules, and assigning processors — per
// section 3.3 of the paper. Time is O(P^4 k^3) and memory O(P^3 k^2) in
// this implementation (the paper reports O(P^4 k^2); the extra factor of k
// comes from carrying the span of the open module explicitly, which keeps
// the recurrence direct). Practical for k <= 8 on P <= 64; use the greedy
// heuristic beyond that.
func MapChain(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	if opt.DisableClustering {
		return assignEngine(c, pl, !opt.DisableReplication, opt)
	}
	s, err := NewSolver(c, pl, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	m, err := s.Solve()
	if err != nil {
		return model.Mapping{}, err
	}
	// The solve result aliases solver-owned scratch; detach it so the
	// solver (and its arenas) can be collected.
	m.Modules = append([]model.Module(nil), m.Modules...)
	return m, nil
}

// MapExhaustive enumerates all 2^(k-1) clusterings of the chain and solves
// each with the assignment DP over modules, returning the best mapping. It
// is exponential in k and exists to cross-validate MapChain.
func MapExhaustive(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	var best model.Mapping
	bestThr := -1.0
	var lastErr error
	for _, spans := range model.AllClusterings(c.Len()) {
		m, err := AssignClustered(c, pl, spans, opt)
		if err != nil {
			lastErr = err
			continue
		}
		if thr := m.Throughput(); thr > bestThr {
			bestThr, best = thr, m
		}
	}
	if bestThr < 0 {
		return model.Mapping{}, fmt.Errorf("dp: no clustering is feasible: %w", lastErr)
	}
	return best, nil
}

// AssignClustered solves optimal processor assignment (with replication
// unless disabled) for a fixed clustering, by collapsing each module into a
// synthetic task and running the assignment DP on the module chain.
func AssignClustered(c *model.Chain, pl model.Platform, spans []model.Span, opt Options) (model.Mapping, error) {
	if !model.ValidClustering(spans, c.Len()) {
		return model.Mapping{}, fmt.Errorf("dp: invalid clustering %v for %d tasks", spans, c.Len())
	}
	mc := model.CollapseClustering(c, spans)
	m, err := assignEngine(mc, pl, !opt.DisableReplication, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	// Translate module-chain task indices back to original task spans.
	mods := make([]model.Module, len(m.Modules))
	for i, mod := range m.Modules {
		mods[i] = model.Module{
			Lo: spans[i].Lo, Hi: spans[i].Hi,
			Procs:    mod.Procs,
			Replicas: mod.Replicas,
		}
	}
	return model.Mapping{Chain: c, Modules: mods}, nil
}
