package dp

import (
	"container/heap"
	"fmt"

	"pipemap/internal/model"
)

// AssignNoComm solves optimal processor assignment for the special case
// the paper opens section 3.1 with: when communication time is negligible
// the response time of each task depends only on its own processors, and
// the optimum is found in O(Pk) time (O(P log k) here) by repeatedly
// giving a processor to the slowest task. Communication costs in the
// chain are ignored; the result is optimal for the comm-free relaxation
// and a (possibly loose) mapping otherwise. Replication is applied
// maximally, as in AssignReplicated.
func AssignNoComm(c *model.Chain, pl model.Platform) (model.Mapping, error) {
	t, err := newTaskTables(c, pl, true)
	if err != nil {
		return model.Mapping{}, err
	}
	k, P := t.k, t.P

	raw := make([]int, k)
	used := 0
	for i := 0; i < k; i++ {
		raw[i] = t.min[i]
		used += raw[i]
	}
	// Effective response of task i at raw processors p (exec only).
	resp := func(i, p int) float64 {
		return t.execEff[i][p] / float64(t.rep[i][p])
	}

	h := &respHeap{}
	for i := 0; i < k; i++ {
		heap.Push(h, respItem{task: i, resp: resp(i, raw[i])})
	}
	best := append([]int(nil), raw...)
	bestPeriod := h.peek().resp
	for used < P {
		slow := heap.Pop(h).(respItem)
		i := slow.task
		raw[i]++
		used++
		heap.Push(h, respItem{task: i, resp: resp(i, raw[i])})
		if period := h.peek().resp; period < bestPeriod {
			bestPeriod = period
			copy(best, raw)
		}
	}
	if bestPeriod <= 0 {
		return model.Mapping{}, fmt.Errorf("dp: degenerate chain with zero response times")
	}

	m := model.Mapping{Chain: c, Modules: make([]model.Module, k)}
	for i := 0; i < k; i++ {
		m.Modules[i] = model.Module{
			Lo: i, Hi: i + 1,
			Procs:    t.eff[i][best[i]],
			Replicas: t.rep[i][best[i]],
		}
	}
	return m, nil
}

// respHeap is a max-heap of per-task effective response times: the root
// is the bottleneck task.
type respHeap []respItem

type respItem struct {
	task int
	resp float64
}

func (h respHeap) Len() int            { return len(h) }
func (h respHeap) Less(i, j int) bool  { return h[i].resp > h[j].resp }
func (h respHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *respHeap) Push(x interface{}) { *h = append(*h, x.(respItem)) }
func (h *respHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
func (h respHeap) peek() respItem { return h[0] }
