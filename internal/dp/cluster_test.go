package dp

import (
	"math/rand"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// mergeFriendlyChain rewards clustering tasks 1 and 2: the edge between
// them is free internally but expensive externally (they share a data
// distribution, like rowffts and hist in the paper).
func mergeFriendlyChain() *model.Chain {
	return &model.Chain{
		Tasks: []model.Task{
			{Name: "col", Exec: model.PolyExec{C2: 10}, Replicable: true},
			{Name: "row", Exec: model.PolyExec{C2: 10}, Replicable: true},
			{Name: "hist", Exec: model.PolyExec{C2: 5, C3: 0.1}, Replicable: true},
		},
		ICom: []model.CostFunc{
			model.PolyExec{C1: 0.3, C2: 1}, // transpose: costly either way
			model.ZeroExec(),               // same distribution: free inside
		},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.3, C2: 0.5, C3: 0.5},
			model.PolyComm{C1: 0.5, C2: 2, C3: 2}, // expensive across modules
		},
	}
}

func TestMapChainClusters(t *testing.T) {
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 12}
	m, err := MapChain(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(pl); err != nil {
		t.Fatalf("mapping invalid: %v", err)
	}
	// row and hist should share a module.
	found := false
	for _, mod := range m.Modules {
		if mod.Lo <= 1 && mod.Hi >= 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("row+hist not clustered: %v", &m)
	}
}

func TestMapChainMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 40; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 5+rng.Intn(6))
		opt := Options{DisableReplication: trial%3 == 0}
		m, err := MapChain(c, pl, opt)
		ref, refErr := MapExhaustive(c, pl, opt)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("trial %d: MapChain err=%v, MapExhaustive err=%v", trial, err, refErr)
		}
		if err != nil {
			continue
		}
		if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
			t.Errorf("trial %d: MapChain %g != MapExhaustive %g\n dp: %v\n ex: %v",
				trial, m.Throughput(), ref.Throughput(), &m, &ref)
		}
		if err := m.Validate(pl); err != nil {
			t.Errorf("trial %d: mapping invalid: %v (%v)", trial, err, &m)
		}
	}
}

func TestMapChainMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	cfg := testutil.RandChainConfig{MinTasks: 2, MaxTasks: 3, MaxMinProcs: 2, AllowNonReplicable: true}
	for trial := 0; trial < 25; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 4+rng.Intn(4))
		m, err := MapChain(c, pl, Options{})
		ref, refErr := BruteForce(c, pl, Options{})
		if (err == nil) != (refErr == nil) {
			t.Fatalf("trial %d: MapChain err=%v, brute err=%v", trial, err, refErr)
		}
		if err != nil {
			continue
		}
		if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
			t.Errorf("trial %d: MapChain %g != brute %g\n dp: %v\n bf: %v",
				trial, m.Throughput(), ref.Throughput(), &m, &ref)
		}
	}
}

func TestMapChainDisableClustering(t *testing.T) {
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 12}
	m, err := MapChain(c, pl, Options{DisableClustering: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 3 {
		t.Errorf("clustering disabled but got %d modules", len(m.Modules))
	}
}

func TestMapChainThroughputAtLeastAssignment(t *testing.T) {
	// Clustering strictly enlarges the search space, so MapChain can never
	// lose to the singleton-clustering assignment DP under the same
	// replication rule. (Note the comparison must hold the replication rule
	// fixed: the paper's maximal-replication transformation of section 3.2
	// is an assumption, and with adversarial communication functions forced
	// replication can lose to no replication.)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		c, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 8)
		for _, disableRep := range []bool{false, true} {
			full, err := MapChain(c, pl, Options{DisableReplication: disableRep})
			if err != nil {
				continue
			}
			var plain model.Mapping
			if disableRep {
				plain, err = Assign(c, pl)
			} else {
				plain, err = AssignReplicated(c, pl)
			}
			if err != nil {
				continue
			}
			if full.Throughput() < plain.Throughput()-1e-9 {
				t.Errorf("trial %d (disableRep=%v): full mapping %g worse than plain assignment %g",
					trial, disableRep, full.Throughput(), plain.Throughput())
			}
		}
	}
}

func TestMapChainBeatsDataParallelWhenOverheadHigh(t *testing.T) {
	// With strong per-processor overhead in one task, the mixed task/data
	// parallel mapping should beat pure data parallelism (the paper's core
	// observation).
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 32}
	m, err := MapChain(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dpl := model.DataParallel(c, pl)
	if m.Throughput() <= dpl.Throughput() {
		t.Errorf("optimal %g not better than data parallel %g", m.Throughput(), dpl.Throughput())
	}
}

func TestAssignClusteredInvalidSpans(t *testing.T) {
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 8}
	if _, err := AssignClustered(c, pl, []model.Span{{Lo: 0, Hi: 2}}, Options{}); err == nil {
		t.Error("incomplete clustering accepted")
	}
}

func TestAssignClusteredTranslatesSpans(t *testing.T) {
	c := mergeFriendlyChain()
	pl := model.Platform{Procs: 8}
	spans := []model.Span{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 3}}
	m, err := AssignClustered(c, pl, spans, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 2 || m.Modules[1].Lo != 1 || m.Modules[1].Hi != 3 {
		t.Errorf("spans not preserved: %v", m.Modules)
	}
	if err := m.Validate(pl); err != nil {
		t.Errorf("mapping invalid: %v", err)
	}
}

func TestMapChainInfeasible(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 9000}},
			{Name: "b", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 9000}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	// Each task alone needs 9 processors; merged they need 18. Only 10
	// available, so no clustering fits both.
	if _, err := MapChain(c, model.Platform{Procs: 10, MemPerProc: 1000}, Options{}); err == nil {
		t.Error("infeasible chain accepted")
	}
}

func TestMapChainSingleTask(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{{Name: "solo", Exec: model.PolyExec{C1: 0.5, C2: 4}, Replicable: true}},
	}
	pl := model.Platform{Procs: 6}
	m, err := MapChain(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BruteForce(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
		t.Errorf("single task: MapChain %g != brute %g", m.Throughput(), ref.Throughput())
	}
}
