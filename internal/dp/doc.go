// Package dp implements the optimal dynamic programming mapping algorithms
// from section 3 of Subhlok & Vondran (PPoPP 1995).
//
// Three levels are provided, mirroring the paper's presentation:
//
//   - Assign solves optimal processor assignment for a fixed clustering
//     with no replication (section 3.1), in O(P^4 k) time.
//   - AssignReplicated adds maximal replication under memory constraints
//     (section 3.2) by substituting effective processor counts and
//     effective response times; same complexity.
//   - MapChain solves the full mapping problem — clustering, replication
//     and assignment together (section 3.3).
//
// MapExhaustive cross-checks MapChain by enumerating all 2^(k-1)
// clusterings and solving each with the assignment DP; the two must agree
// on the optimal throughput.
//
// The DP value function follows Lemma 1: V_j(p_total, p_last, p_next) is
// the minimal bottleneck response time over tasks t_1..t_j when the
// subchain holds p_total processors, t_j holds p_last and t_{j+1} holds
// p_next. Since p_next is part of the state, the response time of t_j is
// computable and the recurrence minimizes over the processor count q of
// t_{j-1}:
//
//	V_j(pt, pl, pn) = min over q of max( V_{j-1}(pt-pl, q, pl), resp_j(q, pl, pn) )
//
// Layers are parallelized across goroutines over the p_total dimension;
// all cost functions are pre-tabulated so the inner loop is flat float
// arithmetic.
package dp
