package dp

import (
	"math/rand"
	"reflect"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/testutil"
)

// diffConfig bounds the differential instances: chains up to k=5 tasks on
// up to P=8 processors, small enough for BruteForce to stay fast but large
// enough to exercise clustering, replication and memory minima together.
var diffConfig = testutil.RandChainConfig{
	MinTasks: 1, MaxTasks: 5, MaxMinProcs: 3, AllowNonReplicable: true,
}

// diffCase builds the seeded random instance for one differential check.
func diffCase(seed int64) (*model.Chain, model.Platform) {
	rng := rand.New(rand.NewSource(seed))
	procs := 2 + rng.Intn(7) // 2..8
	return testutil.RandChain(rng, diffConfig, procs)
}

// checkDPMatchesBrute asserts that the full DP — clustering plus
// replication — achieves exactly the brute-force-optimal throughput, and
// that the returned mapping is valid and delivers the throughput it
// claims.
func checkDPMatchesBrute(t *testing.T, seed int64) {
	t.Helper()
	c, pl := diffCase(seed)
	m, err := MapChain(c, pl, Options{})
	ref, refErr := BruteForce(c, pl, Options{})
	if (err == nil) != (refErr == nil) {
		t.Fatalf("seed %d: feasibility disagreement: dp err=%v, brute err=%v", seed, err, refErr)
	}
	if err != nil {
		return
	}
	if verr := m.Validate(pl); verr != nil {
		t.Fatalf("seed %d: DP produced invalid mapping %v: %v", seed, &m, verr)
	}
	if !testutil.AlmostEqual(m.Throughput(), ref.Throughput(), 1e-9) {
		t.Fatalf("seed %d: DP throughput %.12f != brute force %.12f\nchain: %+v\ndp:    %v\nbrute: %v",
			seed, m.Throughput(), ref.Throughput(), c, &m, &ref)
	}
}

// FuzzDPMatchesBrute is the differential fuzz target: any seed defines a
// random chain instance, and the DP must match exhaustive enumeration
// exactly. Run with `go test -fuzz FuzzDPMatchesBrute ./internal/dp` to
// search for disagreements; the committed corpus replays known-interesting
// seeds as a regression suite on every plain `go test`.
func FuzzDPMatchesBrute(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 7, 42, 1995, 65536, -1, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkDPMatchesBrute(t, seed)
	})
}

// TestDPMatchesBruteTable is the deterministic companion to the fuzz
// target: 200 fixed seeds checked on every test run, no fuzz engine
// involved.
func TestDPMatchesBruteTable(t *testing.T) {
	if testing.Short() {
		t.Skip("differential table is slow under -short")
	}
	for seed := int64(0); seed < 200; seed++ {
		checkDPMatchesBrute(t, seed)
	}
}

// TestInstrumentedSolveIdentical asserts the observability hooks cannot
// perturb the solver: MapChain with a live tracer and registry returns a
// bit-identical mapping to the uninstrumented solve, and the instruments
// actually collected solver activity.
func TestInstrumentedSolveIdentical(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c, pl := diffCase(seed)
		plain, errPlain := MapChain(c, pl, Options{})
		tr := obs.NewTracer()
		reg := obs.NewRegistry()
		inst, errInst := MapChain(c, pl, Options{Trace: tr, Metrics: reg})
		if (errPlain == nil) != (errInst == nil) {
			t.Fatalf("seed %d: error disagreement: plain=%v instrumented=%v", seed, errPlain, errInst)
		}
		if errPlain != nil {
			continue
		}
		if !reflect.DeepEqual(plain.Modules, inst.Modules) {
			t.Errorf("seed %d: instrumentation changed the mapping:\nplain: %v\nobs:   %v",
				seed, &plain, &inst)
		}
		if tr.Len() == 0 {
			t.Errorf("seed %d: tracer collected no solver spans", seed)
		}
		// Single-task chains skip the layer loop, so counters only appear
		// for k > 1.
		s := reg.Snapshot()
		if c.Len() > 1 && s.Counters["dp.map_chain.states"] == 0 {
			t.Errorf("seed %d: metrics registry collected no state counts: %+v", seed, s.Counters)
		}
	}
}
