package dp

import (
	"fmt"

	"pipemap/internal/model"
)

// BruteForce finds the optimal mapping by exhaustive enumeration of
// clusterings, processor assignments and (maximal) replications. It is
// exponential in both k and P and exists only as a reference for testing
// the dynamic programming and greedy algorithms on small instances.
func BruteForce(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	clusterings := model.AllClusterings(c.Len())
	if opt.DisableClustering {
		clusterings = [][]model.Span{model.Singletons(c.Len())}
	}
	var best model.Mapping
	bestThr := -1.0
	for _, spans := range clusterings {
		m, ok := bruteAssign(c, pl, spans, opt)
		if !ok {
			continue
		}
		if thr := m.Throughput(); thr > bestThr {
			bestThr, best = thr, m
		}
	}
	if bestThr < 0 {
		return model.Mapping{}, fmt.Errorf("dp: brute force found no feasible mapping")
	}
	return best, nil
}

// bruteAssign enumerates every assignment of raw processor counts to the
// modules of one clustering (allowing unused processors) and returns the
// best resulting mapping.
func bruteAssign(c *model.Chain, pl model.Platform, spans []model.Span, opt Options) (model.Mapping, bool) {
	l := len(spans)
	mins := make([]int, l)
	for i, s := range spans {
		m := c.ModuleMinProcs(s.Lo, s.Hi, pl.MemPerProc)
		if m < 0 || m > pl.Procs {
			return model.Mapping{}, false
		}
		mins[i] = m
	}
	raw := make([]int, l)
	var best model.Mapping
	bestThr := -1.0
	var rec func(i, used int)
	rec = func(i, used int) {
		if i == l {
			mods := make([]model.Module, l)
			for j, s := range spans {
				rep := model.SplitReplicas(raw[j], mins[j],
					!opt.DisableReplication && c.ModuleReplicable(s.Lo, s.Hi))
				mods[j] = model.Module{Lo: s.Lo, Hi: s.Hi,
					Procs: rep.ProcsPerInstance, Replicas: rep.Replicas}
			}
			m := model.Mapping{Chain: c, Modules: mods}
			if thr := m.Throughput(); thr > bestThr {
				bestThr, best = thr, m
			}
			return
		}
		for p := mins[i]; used+p <= pl.Procs; p++ {
			raw[i] = p
			rec(i+1, used+p)
		}
	}
	rec(0, 0)
	if bestThr < 0 {
		return model.Mapping{}, false
	}
	return best, true
}
