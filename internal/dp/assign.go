package dp

import (
	"fmt"
	"sync/atomic"
	"time"

	"pipemap/internal/model"
)

// Assign computes the optimal processor assignment for a chain in which
// every task is its own module and replication is not permitted
// (section 3.1 of the paper). It runs in O(P^4 k) time and returns the
// optimal mapping together with its predicted throughput.
func Assign(c *model.Chain, pl model.Platform) (model.Mapping, error) {
	return assignEngine(c, pl, false, Options{})
}

// AssignReplicated computes the optimal processor assignment with maximal
// replication under memory constraints (section 3.2): a replicable task
// holding p processors runs floor(p/min) instances of floor(p/r)
// processors each, and its effective response time is f(p_eff)/r.
func AssignReplicated(c *model.Chain, pl model.Platform) (model.Mapping, error) {
	return assignEngine(c, pl, true, Options{})
}

// assignEngine is the shared DP for Assign and AssignReplicated.
//
// The value function V_j(pt, pl, pn) is the minimal achievable bottleneck
// effective response time over tasks 0..j, where the subchain holds at
// most pt raw processors, task j holds pl, and task j+1 holds pn
// (pn = 0 is the φ sentinel for the last task). Layers are flattened as
// V[(pt*(P+1)+pl)*(P+1)+pn].
func assignEngine(c *model.Chain, pl model.Platform, replicate bool, opt Options) (model.Mapping, error) {
	t, err := newTaskTables(c, pl, replicate)
	if err != nil {
		return model.Mapping{}, err
	}
	ins := opt.instrument()
	k, P := t.k, t.P
	stride := P + 1
	layerSize := stride * stride * stride
	idx := func(pt, p, pn int) int { return (pt*stride+p)*stride + pn }

	cur := make([]float64, layerSize)
	prev := make([]float64, layerSize)
	// choice[j] records the argmin q (processors of task j-1) for each
	// state of layer j, for reconstruction.
	choice := make([][]uint16, k)

	// Base layer: task 0 alone. resp_0(pl, pn) = (exec + out-transfer)/r.
	solveT0 := time.Now()
	fill(cur, inf)
	pnLo, pnHi := pnRange(t, 0)
	var baseStates int64
	for pt := t.min[0]; pt <= P; pt++ {
		for p := t.min[0]; p <= pt; p++ {
			r := float64(t.rep[0][p])
			for pn := pnLo; pn <= pnHi; pn++ {
				v := t.execEff[0][p]
				if k > 1 {
					v += t.ecomEff[0][p*stride+pn]
				}
				cur[idx(pt, p, pn)] = v / r
				baseStates++
			}
		}
	}
	ins.layer("assign", 0, solveT0, baseStates, 0, 0)

	for j := 1; j < k; j++ {
		layerT0 := time.Now()
		var states, transitions, pruned atomic.Int64
		cur, prev = prev, cur
		fill(cur, inf)
		ch := make([]uint16, layerSize)
		choice[j] = ch
		jpnLo, jpnHi := pnRange(t, j)
		execJ := t.execEff[j]
		inEdge := t.ecomEff[j-1]
		var outEdge []float64
		if j < k-1 {
			outEdge = t.ecomEff[j]
		}
		minJ, minPrev := t.min[j], t.min[j-1]
		parallelFor(P+1, func(pt int) {
			// Scratch for the (a_q, b_q) decomposition: for fixed (pt, p),
			// a_q = V_{j-1}(pt-p, q, p) and b_q = (in(q,p) + exec(p)) / r.
			aq := make([]float64, P+1)
			bq := make([]float64, P+1)
			var nStates, nTrans, nPruned int64
			for p := minJ; p <= pt; p++ {
				rem := pt - p
				if rem < minPrev {
					nPruned++
					continue
				}
				r := float64(t.rep[j][p])
				qHi := rem
				for q := minPrev; q <= qHi; q++ {
					aq[q] = prev[idx(rem, q, p)]
					bq[q] = (inEdge[q*stride+p] + execJ[p]) / r
				}
				for pn := jpnLo; pn <= jpnHi; pn++ {
					var out float64
					if outEdge != nil {
						out = outEdge[p*stride+pn] / r
					}
					best, bestQ := inf, -1
					for q := minPrev; q <= qHi; q++ {
						v := bq[q] + out
						if aq[q] > v {
							v = aq[q]
						}
						if v < best {
							best, bestQ = v, q
						}
					}
					nTrans += int64(qHi - minPrev + 1)
					if bestQ >= 0 {
						i := idx(pt, p, pn)
						cur[i] = best
						ch[i] = uint16(bestQ)
						nStates++
					} else {
						nPruned++
					}
				}
			}
			if ins.on {
				states.Add(nStates)
				transitions.Add(nTrans)
				pruned.Add(nPruned)
			}
		})
		ins.layer("assign", j, layerT0, states.Load(), transitions.Load(), pruned.Load())
	}

	// Answer: best over pl of V_{k-1}(P, pl, φ).
	best, bestP := inf, -1
	for p := t.min[k-1]; p <= P; p++ {
		if v := cur[idx(P, p, 0)]; v < best {
			best, bestP = v, p
		}
	}
	if bestP < 0 {
		return model.Mapping{}, fmt.Errorf("dp: no feasible assignment of %d processors to %d tasks", P, k)
	}

	// Reconstruct raw processor counts right to left.
	raw := make([]int, k)
	raw[k-1] = bestP
	pt, p, pn := P, bestP, 0
	for j := k - 1; j >= 1; j-- {
		q := int(choice[j][idx(pt, p, pn)])
		raw[j-1] = q
		pt, p, pn = pt-p, q, p
	}

	m := model.Mapping{Chain: c, Modules: make([]model.Module, k)}
	for i := 0; i < k; i++ {
		m.Modules[i] = model.Module{
			Lo: i, Hi: i + 1,
			Procs:    t.eff[i][raw[i]],
			Replicas: t.rep[i][raw[i]],
		}
	}
	ins.done("assign", k, P, solveT0)
	return m, nil
}

// pnRange returns the admissible raw processor range for the task after
// task j: the φ sentinel {0} when j is the last task, otherwise
// [min_{j+1}, P].
func pnRange(t *taskTables, j int) (lo, hi int) {
	if j == t.k-1 {
		return 0, 0
	}
	return t.min[j+1], t.P
}

func fill(s []float64, v float64) {
	for i := range s {
		s[i] = v
	}
}
