package dp

import (
	"math/rand"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// commFreeChain builds a random chain with zero communication costs.
func commFreeChain(rng *rand.Rand, k int) *model.Chain {
	c := &model.Chain{
		Tasks: make([]model.Task, k),
		ICom:  make([]model.CostFunc, k-1),
		ECom:  make([]model.CommFunc, k-1),
	}
	for i := 0; i < k; i++ {
		c.Tasks[i] = model.Task{
			Name:       string(rune('a' + i)),
			Exec:       model.PolyExec{C1: rng.Float64() * 0.1, C2: 0.5 + rng.Float64()*8},
			Replicable: rng.Float64() < 0.5,
		}
	}
	for i := 0; i < k-1; i++ {
		c.ICom[i] = model.ZeroExec()
		c.ECom[i] = model.ZeroComm()
	}
	return c
}

func TestAssignNoCommMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(4)
		c := commFreeChain(rng, k)
		pl := model.Platform{Procs: k + rng.Intn(16)}
		fast, err := AssignNoComm(c, pl)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := AssignReplicated(c, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(fast.Throughput(), exact.Throughput(), 1e-9) {
			t.Errorf("trial %d: no-comm fast %g != DP %g\n fast: %v\n dp:   %v",
				trial, fast.Throughput(), exact.Throughput(), &fast, &exact)
		}
		if err := fast.Validate(pl); err != nil {
			t.Errorf("trial %d: invalid mapping: %v", trial, err)
		}
	}
}

func TestAssignNoCommNonMonotoneExec(t *testing.T) {
	// A cliff in one task's cost function: the slowest-task greedy with
	// best-ever tracking still finds the comm-free optimum.
	cliff, err := model.NewTableCost(map[int]float64{1: 6, 5: 6, 6: 1, 12: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "smooth", Exec: model.PolyExec{C2: 8}},
			{Name: "cliff", Exec: cliff},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 10}
	fast, err := AssignNoComm(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Assign(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(fast.Throughput(), exact.Throughput(), 1e-9) {
		t.Errorf("no-comm fast %g != DP %g on the cliff chain", fast.Throughput(), exact.Throughput())
	}
}

func TestAssignNoCommErrors(t *testing.T) {
	c := commFreeChain(rand.New(rand.NewSource(1)), 3)
	if _, err := AssignNoComm(c, model.Platform{Procs: 0}); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := AssignNoComm(&model.Chain{}, model.Platform{Procs: 4}); err == nil {
		t.Error("empty chain accepted")
	}
}

func BenchmarkAssignNoComm(b *testing.B) {
	c := commFreeChain(rand.New(rand.NewSource(2)), 8)
	pl := model.Platform{Procs: 1024}
	for i := 0; i < b.N; i++ {
		if _, err := AssignNoComm(c, pl); err != nil {
			b.Fatal(err)
		}
	}
}
