package dp

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"pipemap/internal/model"
)

// inf is the sentinel for infeasible states.
var inf = math.Inf(1)

// taskTables holds pre-tabulated per-task cost and replication data for a
// chain on a platform, indexed by raw processor counts 0..P. Entries below
// a task's minimum processor count are marked infeasible (eff == 0,
// exec == +Inf).
type taskTables struct {
	k, P int
	// min[i] is the minimum processors an instance of task i needs.
	min []int
	// eff[i][p] is the per-instance (effective) processor count when task i
	// holds p raw processors; 0 if p < min[i].
	eff [][]int
	// rep[i][p] is the replication degree of task i at p raw processors.
	rep [][]int
	// execEff[i][p] is task i's execution time at its effective processor
	// count for p raw processors; +Inf if infeasible.
	execEff [][]float64
	// ecomEff[e] is the external transfer time of edge e evaluated at the
	// effective counts of its endpoint tasks, flattened as
	// ecomEff[e][q*(P+1)+pl] for raw processor counts q (sender task e) and
	// pl (receiver task e+1); +Inf if either endpoint is infeasible.
	ecomEff [][]float64
}

// newTaskTables tabulates the chain's cost functions. replicate enables the
// maximal-replication transformation of section 3.2; when false every task
// runs as a single instance.
func newTaskTables(c *model.Chain, pl model.Platform, replicate bool) (*taskTables, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	k, P := c.Len(), pl.Procs
	t := &taskTables{
		k: k, P: P,
		min:     make([]int, k),
		eff:     make([][]int, k),
		rep:     make([][]int, k),
		execEff: make([][]float64, k),
		ecomEff: make([][]float64, k-1),
	}
	summin := 0
	for i := 0; i < k; i++ {
		min := c.ModuleMinProcs(i, i+1, pl.MemPerProc)
		if min < 0 {
			return nil, fmt.Errorf("dp: task %q does not fit in memory at any processor count",
				c.Tasks[i].Name)
		}
		if min > P {
			return nil, fmt.Errorf("dp: task %q needs %d processors, platform has %d",
				c.Tasks[i].Name, min, P)
		}
		t.min[i] = min
		summin += min
		t.eff[i] = make([]int, P+1)
		t.rep[i] = make([]int, P+1)
		t.execEff[i] = make([]float64, P+1)
		for p := 0; p <= P; p++ {
			r := model.SplitReplicas(p, min, replicate && c.Tasks[i].Replicable)
			if r.Replicas == 0 {
				t.execEff[i][p] = inf
				continue
			}
			t.eff[i][p] = r.ProcsPerInstance
			t.rep[i][p] = r.Replicas
			t.execEff[i][p] = c.Tasks[i].Exec.Eval(r.ProcsPerInstance)
		}
	}
	if summin > P {
		return nil, fmt.Errorf("dp: chain needs at least %d processors, platform has %d", summin, P)
	}
	for e := 0; e < k-1; e++ {
		t.ecomEff[e] = make([]float64, (P+1)*(P+1))
		for q := 0; q <= P; q++ {
			for p := 0; p <= P; p++ {
				idx := q*(P+1) + p
				if t.eff[e][q] == 0 || t.eff[e+1][p] == 0 {
					t.ecomEff[e][idx] = inf
					continue
				}
				t.ecomEff[e][idx] = c.ECom[e].Eval(t.eff[e][q], t.eff[e+1][p])
			}
		}
	}
	return t, nil
}

// parallelFor runs f(i) for i in [0, n) across GOMAXPROCS goroutines.
// The DP layers it is used on have independent iterations.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}
