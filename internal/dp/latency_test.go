package dp

import (
	"math/rand"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// bruteMinLatency enumerates clusterings and single-instance processor
// assignments to find the true latency minimum on small instances.
func bruteMinLatency(c *model.Chain, pl model.Platform) (model.Mapping, bool) {
	var best model.Mapping
	bestLat := -1.0
	for _, spans := range model.AllClusterings(c.Len()) {
		l := len(spans)
		mins := make([]int, l)
		ok := true
		for i, sp := range spans {
			m := c.ModuleMinProcs(sp.Lo, sp.Hi, pl.MemPerProc)
			if m < 0 || m > pl.Procs {
				ok = false
				break
			}
			mins[i] = m
		}
		if !ok {
			continue
		}
		raw := make([]int, l)
		var rec func(i, used int)
		rec = func(i, used int) {
			if i == l {
				mods := make([]model.Module, l)
				for j, sp := range spans {
					mods[j] = model.Module{Lo: sp.Lo, Hi: sp.Hi, Procs: raw[j], Replicas: 1}
				}
				m := model.Mapping{Chain: c, Modules: mods}
				if lat := m.Latency(); bestLat < 0 || lat < bestLat {
					bestLat, best = lat, m
				}
				return
			}
			for p := mins[i]; used+p <= pl.Procs; p++ {
				raw[i] = p
				rec(i+1, used+p)
			}
		}
		rec(0, 0)
	}
	return best, bestLat >= 0
}

func TestMinLatencyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	cfg := testutil.RandChainConfig{MinTasks: 2, MaxTasks: 4, MaxMinProcs: 2, AllowNonReplicable: true}
	for trial := 0; trial < 25; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 4+rng.Intn(5))
		m, err := MinLatency(c, pl)
		ref, ok := bruteMinLatency(c, pl)
		if (err == nil) != ok {
			t.Fatalf("trial %d: dp err=%v, brute ok=%v", trial, err, ok)
		}
		if err != nil {
			continue
		}
		if !testutil.AlmostEqual(m.Latency(), ref.Latency(), 1e-9) {
			t.Errorf("trial %d: MinLatency %g != brute %g\n dp: %v\n bf: %v",
				trial, m.Latency(), ref.Latency(), &m, &ref)
		}
		if err := m.Validate(pl); err != nil {
			t.Errorf("trial %d: mapping invalid: %v", trial, err)
		}
	}
}

func TestMinLatencyNeverWorseThanThroughputOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 15; trial++ {
		c, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 8)
		lat, err := MinLatency(c, pl)
		if err != nil {
			continue
		}
		thr, err := MapChain(c, pl, Options{})
		if err != nil {
			continue
		}
		if lat.Latency() > thr.Latency()+1e-9 {
			t.Errorf("trial %d: MinLatency %g worse than throughput optimum's latency %g",
				trial, lat.Latency(), thr.Latency())
		}
	}
}

func TestMinLatencyMergesWhenEdgesExpensive(t *testing.T) {
	// With expensive external edges and cheap internal redistribution, the
	// latency optimum is one big module.
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 2}},
			{Name: "b", Exec: model.PolyExec{C2: 2}},
			{Name: "c", Exec: model.PolyExec{C2: 2}},
		},
		ICom: []model.CostFunc{model.ZeroExec(), model.ZeroExec()},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 10},
			model.PolyComm{C1: 10},
		},
	}
	m, err := MinLatency(c, model.Platform{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 1 {
		t.Errorf("expected one merged module, got %v", &m)
	}
	// Latency = 6/8 with all 8 processors.
	if !testutil.AlmostEqual(m.Latency(), 6.0/8, 1e-9) {
		t.Errorf("latency %g, want 0.75", m.Latency())
	}
}

func TestMinLatencySingleInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	c, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 10)
	m, err := MinLatency(c, pl)
	if err != nil {
		t.Skip("infeasible instance")
	}
	for _, mod := range m.Modules {
		if mod.Replicas != 1 {
			t.Errorf("latency optimum replicated: %v", &m)
		}
	}
}

func TestMinLatencyErrors(t *testing.T) {
	if _, err := MinLatency(&model.Chain{}, model.Platform{Procs: 4}); err == nil {
		t.Error("invalid chain accepted")
	}
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 9000}},
			{Name: "b", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 9000}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	if _, err := MinLatency(c, model.Platform{Procs: 10, MemPerProc: 1000}); err == nil {
		t.Error("infeasible chain accepted")
	}
}
