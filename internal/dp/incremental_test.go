package dp

import (
	"math/rand"
	"reflect"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// scaledChain returns a structurally identical copy of c where task i's
// execution cost is factors[i] * original. Only Exec differs, which is
// exactly the update class Solver.Resolve supports.
func scaledChain(c *model.Chain, factors []float64) *model.Chain {
	tasks := make([]model.Task, len(c.Tasks))
	copy(tasks, c.Tasks)
	for i, f := range factors {
		if f != 1 {
			tasks[i].Exec = model.ScaleCost{F: c.Tasks[i].Exec, K: f}
		}
	}
	return &model.Chain{Tasks: tasks, ICom: c.ICom, ECom: c.ECom}
}

// perturbStep picks the changed-task set for step number step of a random
// walk: the first three steps pin the corner cases the harness must cover
// (zero-change tick, single-task tick, all-tasks tick), later steps are
// random non-empty-or-empty subsets.
func perturbStep(rng *rand.Rand, step, k int) []int {
	switch step {
	case 0:
		return nil // zero-change tick: pure memo of the retained tables
	case 1:
		return []int{rng.Intn(k)}
	case 2:
		all := make([]int, k)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var changed []int
	for i := 0; i < k; i++ {
		if rng.Intn(3) == 0 {
			changed = append(changed, i)
		}
	}
	return changed
}

// checkIncrementalMatchesFresh drives one random instance through a
// sequence of execution-cost perturbations and asserts, at every step, that
// the incremental re-solve is bit-identical — same modules, same
// replication, same period — to a from-scratch solve of the perturbed
// chain.
func checkIncrementalMatchesFresh(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	procs := 2 + rng.Intn(7) // 2..8
	c, pl := testutil.RandChain(rng, diffConfig, procs)
	k := c.Len()

	s, err := NewSolver(c, pl, Options{})
	if err != nil {
		t.Fatalf("seed %d: NewSolver: %v", seed, err)
	}
	if _, err := s.Solve(); err != nil {
		// Structurally infeasible instance: perturbing exec costs cannot
		// make it feasible, and there are no tables to reuse. Skip.
		return
	}

	factors := make([]float64, k)
	for i := range factors {
		factors[i] = 1
	}
	for step := 0; step < steps; step++ {
		changed := perturbStep(rng, step, k)
		for _, i := range changed {
			factors[i] *= 0.5 + 1.5*rng.Float64() // 0.5x .. 2x, compounding
		}
		pc := scaledChain(c, factors)

		inc, incErr := s.Resolve(pc, changed)
		fresh, freshErr := MapChain(pc, pl, Options{})
		if (incErr == nil) != (freshErr == nil) {
			t.Fatalf("seed %d step %d (changed %v): feasibility disagreement: incremental err=%v, fresh err=%v",
				seed, step, changed, incErr, freshErr)
		}
		if incErr != nil {
			continue
		}
		if !reflect.DeepEqual(inc.Modules, fresh.Modules) {
			t.Fatalf("seed %d step %d (changed %v): incremental mapping diverged from fresh solve\nincremental: %v\nfresh:       %v",
				seed, step, changed, &inc, &fresh)
		}
		if it, ft := inc.Throughput(), fresh.Throughput(); it != ft {
			t.Fatalf("seed %d step %d (changed %v): period diverged: incremental %v, fresh %v",
				seed, step, changed, 1/it, 1/ft)
		}
	}
}

// FuzzIncrementalMatchesFresh is the differential fuzz target for the
// incremental solver: a random instance walked through a random sequence of
// module-cost perturbations must re-solve bit-identically to a fresh DP at
// every step. The first three steps of every walk are forced corner cases —
// a zero-change tick, a single-task tick, and an all-tasks-changed tick —
// so the committed corpus always exercises them. Run with
// `go test -fuzz FuzzIncrementalMatchesFresh ./internal/dp` to search.
func FuzzIncrementalMatchesFresh(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 7, 42, 1995, 65536, -1, 1 << 40} {
		f.Add(seed, uint8(6))
	}
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		// At least 3 steps so the forced corner cases always run; cap to
		// keep a single fuzz execution fast.
		n := 3 + int(steps)%8
		checkIncrementalMatchesFresh(t, seed, n)
	})
}

// TestIncrementalMatchesFreshTable is the deterministic companion: a fixed
// batch of random walks replayed on every plain `go test`.
func TestIncrementalMatchesFreshTable(t *testing.T) {
	if testing.Short() {
		t.Skip("differential table is slow under -short")
	}
	for seed := int64(0); seed < 120; seed++ {
		checkIncrementalMatchesFresh(t, seed, 6)
	}
}

// TestResolveChangedSetValidation pins the contract errors: wrong chain
// length and out-of-range changed indices are rejected, not misapplied.
func TestResolveChangedSetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, pl := testutil.RandChain(rng, testutil.RandChainConfig{MinTasks: 3, MaxTasks: 3}, 4)
	s, err := NewSolver(c, pl, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	short := &model.Chain{Tasks: c.Tasks[:2], ICom: c.ICom[:1], ECom: c.ECom[:1]}
	if _, err := s.Resolve(short, nil); err == nil {
		t.Error("Resolve accepted a chain of the wrong length")
	}
	if _, err := s.Resolve(c, []int{3}); err == nil {
		t.Error("Resolve accepted an out-of-range changed index")
	}
	if _, err := s.Resolve(c, []int{-1}); err == nil {
		t.Error("Resolve accepted a negative changed index")
	}
}

// TestResolveWithoutSolve asserts Resolve on a never-solved solver falls
// back to a full tabulation + solve and still matches fresh.
func TestResolveWithoutSolve(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := 2 + rng.Intn(7)
		c, pl := testutil.RandChain(rng, diffConfig, procs)
		factors := make([]float64, c.Len())
		for i := range factors {
			factors[i] = 0.5 + 1.5*rng.Float64()
		}
		pc := scaledChain(c, factors)

		// Solver built on c, first call is a Resolve with pc claiming only
		// task 0 changed — a lie the never-solved path must tolerate by
		// retabulating everything.
		s, err := NewSolver(c, pl, Options{})
		if err != nil {
			t.Fatalf("seed %d: NewSolver: %v", seed, err)
		}
		inc, incErr := s.Resolve(pc, []int{0})
		fresh, freshErr := MapChain(pc, pl, Options{})
		if (incErr == nil) != (freshErr == nil) {
			t.Fatalf("seed %d: feasibility disagreement: incremental err=%v, fresh err=%v",
				seed, incErr, freshErr)
		}
		if incErr != nil {
			continue
		}
		if !reflect.DeepEqual(inc.Modules, fresh.Modules) {
			t.Fatalf("seed %d: cold Resolve diverged from fresh solve\nincremental: %v\nfresh:       %v",
				seed, &inc, &fresh)
		}
	}
}

// TestResolveZeroAllocs pins the warm incremental path to zero heap
// allocations: after warm-up solves over both cost views, alternating
// Resolve calls must not allocate at all.
func TestResolveZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := testutil.RandChainConfig{MinTasks: 4, MaxTasks: 4, MaxMinProcs: 2, AllowNonReplicable: true}
	c, pl := testutil.RandChain(rng, cfg, 12)
	k := c.Len()

	factorsA := make([]float64, k)
	factorsB := make([]float64, k)
	for i := range factorsA {
		factorsA[i] = 1
		factorsB[i] = 1
	}
	factorsB[k-2] = 1.7
	a := scaledChain(c, factorsA)
	b := scaledChain(c, factorsB)
	changed := []int{k - 2}

	s, err := NewSolver(c, pl, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Warm-up: visit both cost views so live-state lists reach their final
	// capacities before measuring.
	for i := 0; i < 3; i++ {
		if _, err := s.Resolve(b, changed); err != nil {
			t.Fatalf("warm-up Resolve(b): %v", err)
		}
		if _, err := s.Resolve(a, changed); err != nil {
			t.Fatalf("warm-up Resolve(a): %v", err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Resolve(b, changed); err != nil {
			t.Fatalf("Resolve(b): %v", err)
		}
		if _, err := s.Resolve(a, changed); err != nil {
			t.Fatalf("Resolve(a): %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm incremental Resolve allocated %.1f times per run, want 0", allocs)
	}
}
